#include "core/pipeline.h"

#include <chrono>

#include "core/parallel_executor.h"

namespace xflux {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

}  // namespace

void Filter::AcceptInstrumented(Event event) {
  StageStats& s = *stats_;
  if (event.IsSimple()) {
    ++s.in_simple;
  } else {
    ++s.in_update;
  }
  Clock::time_point start = Clock::now();
  Dispatch(std::move(event));
  s.wall_ns += ElapsedNs(start);
}

void Filter::EmitInstrumented(Event event) {
  StageStats& s = *stats_;
  if (event.IsSimple()) {
    ++s.out_simple;
  } else {
    ++s.out_update;
  }
  Clock::time_point start = Clock::now();
  next_->Accept(std::move(event));
  s.downstream_ns += ElapsedNs(start);
}

void Filter::AcceptBatchInstrumented(EventBatch batch) {
  StageStats& s = *stats_;
  for (const Event& e : batch) {
    if (e.IsSimple()) {
      ++s.in_simple;
    } else {
      ++s.in_update;
    }
  }
  Clock::time_point start = Clock::now();
  DispatchBatch(std::move(batch));
  s.wall_ns += ElapsedNs(start);
}

void Filter::EmitBatchInstrumented(EventBatch batch) {
  StageStats& s = *stats_;
  for (const Event& e : batch) {
    if (e.IsSimple()) {
      ++s.out_simple;
    } else {
      ++s.out_update;
    }
  }
  Clock::time_point start = Clock::now();
  next_->AcceptBatch(std::move(batch));
  s.downstream_ns += ElapsedNs(start);
}

Filter* Pipeline::Add(std::unique_ptr<Filter> stage) {
  assert(!wired_ && "Add after SetSink");
  Filter* raw = stage.get();
  if (!stages_.empty()) {
    stages_.back()->SetNext(raw);
  }
  raw->BindStats(context_->stats());
  stages_.push_back(std::move(stage));
  return raw;
}

Filter* Pipeline::InsertAfter(size_t index, std::unique_ptr<Filter> stage) {
  assert(index < stages_.size() && "InsertAfter past the end of the chain");
  Filter* raw = stage.get();
  raw->BindStats(context_->stats());
  raw->SetNext(index + 1 < stages_.size() ? stages_[index + 1].get()
                                          : static_cast<EventSink*>(sink_));
  stages_[index]->SetNext(raw);
  stages_.insert(stages_.begin() + static_cast<ptrdiff_t>(index) + 1,
                 std::move(stage));
  return raw;
}

Filter* Pipeline::InsertFront(std::unique_ptr<Filter> stage) {
  Filter* raw = stage.get();
  raw->BindStats(context_->stats());
  raw->SetNext(stages_.empty() ? static_cast<EventSink*>(sink_)
                               : stages_.front().get());
  stages_.insert(stages_.begin(), std::move(stage));
  if (wired_) entry_ = raw;
  return raw;
}

void Pipeline::SetSink(EventSink* sink) {
  assert(!wired_ && "SetSink called twice");
  sink_ = sink;
  if (!stages_.empty()) {
    stages_.back()->SetNext(sink);
  }
  entry_ = stages_.empty() ? sink : static_cast<EventSink*>(stages_.front().get());
  wired_ = true;
}

Pipeline::Pipeline() : context_(std::make_unique<PipelineContext>()) {}

Pipeline::Pipeline(StreamId first_dynamic_id)
    : context_(std::make_unique<PipelineContext>(first_dynamic_id)) {}

Pipeline::~Pipeline() { Finish(); }

void Pipeline::EnableParallel(const ParallelOptions& options) {
  assert(wired_ && "EnableParallel before SetSink");
  assert(executor_ == nullptr && "EnableParallel called twice");
  if (options.threads <= 0 || stages_.empty()) return;
  // Registry passivity assumes a shared registry kept current by the
  // emitters; per-segment replicas learn only from their own stages'
  // OnEvent calls, so every stage must bookkeep for itself again.
  for (auto& stage : stages_) stage->set_registry_passive(false);
  executor_ = std::make_unique<ParallelExecutor>(this, options);
  entry_ = executor_.get();
}

void Pipeline::Finish() {
  if (executor_ == nullptr) return;
  executor_->Finish();
  retired_executor_ = std::move(executor_);
  RewireSerial();
}

void Pipeline::RewireSerial() {
  for (size_t i = 0; i + 1 < stages_.size(); ++i) {
    stages_[i]->SetNext(stages_[i + 1].get());
  }
  if (!stages_.empty()) stages_.back()->SetNext(sink_);
  entry_ = stages_.empty() ? sink_ : static_cast<EventSink*>(stages_.front().get());
}

std::vector<size_t> Pipeline::QueueHighWaterMarks() const {
  const ParallelExecutor* exec =
      executor_ != nullptr ? executor_.get() : retired_executor_.get();
  if (exec == nullptr) return {};
  return exec->QueueHighWaterMarks();
}

void Pipeline::BroadcastSourceBookkeeping(const Event& e) {
  if (e.kind == EventKind::kStartStream) {
    context_->streams()->RegisterBase(e.id);
    executor_->Broadcast({RegistryFact::kRegisterBase, e.id, 0});
  }
  if (!accept_source_updates_ && e.kind == EventKind::kStartMutable) {
    context_->fix()->SetFixed(e.uid, true);
    executor_->Broadcast({RegistryFact::kSetFixed, e.uid, 1});
  }
  context_->fix()->OnEvent(e);
  context_->streams()->OnEvent(e);
  // Re-broadcast the OnEvent effects so segment replicas reach the same
  // state the shared root registry holds before dispatch (sR/sB/sA all
  // take identical OnEvent paths, so one replay kind covers the three).
  if (e.IsUpdateStart()) {
    executor_->Broadcast({e.kind == EventKind::kStartMutable
                              ? RegistryFact::kOpenRegion
                              : RegistryFact::kDeriveRegion,
                          e.uid, e.id});
  } else if (e.kind == EventKind::kFreeze) {
    executor_->Broadcast({RegistryFact::kFreezeRegion, e.id, 0});
  }
}

void Pipeline::Push(Event event) {
  assert(wired_ && "Push before SetSink");
  if (context_->poisoned()) return;
  if (executor_ != nullptr) {
    BroadcastSourceBookkeeping(event);
    entry_->Accept(std::move(event));
    return;
  }
  if (event.kind == EventKind::kStartStream) {
    // Source streams are base streams; an id-reusing bracket downstream
    // must never re-root them.
    context_->streams()->RegisterBase(event.id);
  }
  if (!accept_source_updates_ && event.kind == EventKind::kStartMutable) {
    // The consumer opted out: the region is born fixed, so every stage
    // evicts its state immediately and later updates to it are dropped.
    context_->fix()->SetFixed(event.uid, true);
  }
  context_->fix()->OnEvent(event);
  context_->streams()->OnEvent(event);
  entry_->Accept(std::move(event));
}

void Pipeline::PushBatch(EventBatch batch) {
  assert(wired_ && "Push before SetSink");
  if (context_->poisoned()) return;
  if (executor_ != nullptr) {
    // One batch-level branch keeps the serial loop below untouched.
    for (const Event& e : batch) BroadcastSourceBookkeeping(e);
    entry_->AcceptBatch(std::move(batch));
    return;
  }
  for (const Event& e : batch) {
    if (e.kind == EventKind::kStartStream) {
      context_->streams()->RegisterBase(e.id);
    }
    if (!accept_source_updates_ && e.kind == EventKind::kStartMutable) {
      context_->fix()->SetFixed(e.uid, true);
    }
    context_->fix()->OnEvent(e);
    context_->streams()->OnEvent(e);
  }
  entry_->AcceptBatch(std::move(batch));
}

void Pipeline::PushSegment(EventBatch batch) {
  assert(wired_ && "Push before SetSink");
  assert(executor_ == nullptr && "PushSegment on a parallel pipeline");
  if (context_->poisoned()) return;
  // Segment feeds skip the root bookkeeping loop because the first
  // stage's Accept performs the same idempotent per-event registration —
  // unless that stage is registry-passive, in which case the feeder does
  // it here, still strictly per event (no batch lookahead).
  bool passive_entry =
      !stages_.empty() && entry_ == stages_.front().get() &&
      stages_.front()->registry_passive();
  for (Event& e : batch) {
    if (e.kind == EventKind::kStartStream) {
      context_->streams()->RegisterBase(e.id);
    }
    if (passive_entry) {
      context_->fix()->OnEvent(e);
      context_->streams()->OnEvent(e);
    }
    entry_->Accept(std::move(e));
  }
}

void Pipeline::PushAll(const EventVec& events) {
  // Events copy cheaply (interned tags, refcounted text), so feeding a
  // whole in-memory sequence goes through the batched path.
  PushBatch(EventBatch(events.begin(), events.end()));
}

}  // namespace xflux
