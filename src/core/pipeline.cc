#include "core/pipeline.h"

namespace xflux {

Filter* Pipeline::Add(std::unique_ptr<Filter> stage) {
  assert(!wired_ && "Add after SetSink");
  Filter* raw = stage.get();
  if (!stages_.empty()) {
    stages_.back()->SetNext(raw);
  }
  stages_.push_back(std::move(stage));
  return raw;
}

void Pipeline::SetSink(EventSink* sink) {
  assert(!wired_ && "SetSink called twice");
  sink_ = sink;
  if (!stages_.empty()) {
    stages_.back()->SetNext(sink);
  }
  wired_ = true;
}

void Pipeline::Push(Event event) {
  assert(wired_ && "Push before SetSink");
  if (event.kind == EventKind::kStartStream) {
    // Source streams are base streams; an id-reusing bracket downstream
    // must never re-root them.
    context_->streams()->RegisterBase(event.id);
  }
  if (!accept_source_updates_ && event.kind == EventKind::kStartMutable) {
    // The consumer opted out: the region is born fixed, so every stage
    // evicts its state immediately and later updates to it are dropped.
    context_->fix()->SetFixed(event.uid, true);
  }
  context_->fix()->OnEvent(event);
  context_->streams()->OnEvent(event);
  EventSink* first = stages_.empty() ? sink_ : stages_.front().get();
  first->Accept(std::move(event));
}

void Pipeline::PushAll(const EventVec& events) {
  for (const Event& e : events) Push(e);
}

}  // namespace xflux
