#include "core/result_display.h"

namespace xflux {

void ResultDisplay::Accept(Event event) {
  if (!status_.ok()) return;
  status_ = document_.Feed(event);
  if (!status_.ok()) {
    if (on_error_) on_error_(status_);
    return;
  }
  if (on_change_) on_change_(*this);
}

void ResultDisplay::SyncLive() const {
  if (synced_once_ && synced_epoch_ == document_.epoch()) return;
  // Drop the previous volatile suffix; the stable prefix stays rendered.
  live_text_.resize(stable_text_len_);
  live_events_.resize(stable_event_count_);
  RenderOptions opts;
  opts.keep_tuples = options_.keep_tuples;
  document_.SyncRender(
      opts,
      [this] {
        // Structural change: the consumed prefix no longer matches the
        // document.  Replay from the top.
        live_events_.clear();
        stable_writer_.Reset();  // clears live_text_ too
      },
      [this](const Event& e) {
        live_events_.push_back(e);
        stable_writer_.Accept(e);
      });
  stable_text_len_ = live_text_.size();
  stable_event_count_ = live_events_.size();
  render_status_ = stable_writer_.status();
  if (document_.HasVolatileTail()) {
    // Fork the writer: the copy continues mid-document, appending the
    // tail's rendering to live_text_; its state dies with the refresh.
    XmlSerializer tail_writer(stable_writer_);
    document_.RenderVolatileTail(opts, [this, &tail_writer](const Event& e) {
      live_events_.push_back(e);
      tail_writer.Accept(e);
    });
    if (render_status_.ok()) render_status_ = tail_writer.status();
  }
  synced_epoch_ = document_.epoch();
  synced_once_ = true;
}

const EventVec& ResultDisplay::LiveEvents() const {
  SyncLive();
  return live_events_;
}

const std::string& ResultDisplay::LiveText() const {
  SyncLive();
  return live_text_;
}

EventVec ResultDisplay::CurrentEvents() const { return LiveEvents(); }

StatusOr<std::string> ResultDisplay::CurrentText() const {
  const std::string& text = LiveText();
  if (!render_status_.ok()) return render_status_;
  return text;
}

ResultDisplay::TextDelta ResultDisplay::TextDeltaSince(
    size_t last_stable_len, uint64_t last_restarts) const {
  const std::string& text = LiveText();
  TextDelta delta;
  delta.restarts = document_.full_rescans();
  delta.stable_len = stable_text_len_;
  // Between restarts the stable prefix only appends, so exactly the bytes
  // that were stable at the last send are still valid; a restart replays
  // from the top and invalidates everything.
  delta.keep =
      delta.restarts == last_restarts ? std::min(last_stable_len, text.size())
                                      : 0;
  delta.append = std::string_view(text).substr(delta.keep);
  return delta;
}

EventVec ResultDisplay::FullRenderEvents() const {
  RenderOptions opts;
  opts.keep_tuples = options_.keep_tuples;
  return document_.RenderEvents(opts);
}

StatusOr<std::string> ResultDisplay::FullRenderText() const {
  XmlSerializer::Options opts;
  opts.pretty = options_.pretty;
  return XmlSerializer::ToXml(FullRenderEvents(), opts);
}

}  // namespace xflux
