#include "core/result_display.h"

#include "xml/serializer.h"

namespace xflux {

void ResultDisplay::Accept(Event event) {
  if (!status_.ok()) return;
  status_ = document_.Feed(event);
  if (!status_.ok()) {
    if (on_error_) on_error_(status_);
    return;
  }
  if (on_change_) on_change_(*this);
}

EventVec ResultDisplay::CurrentEvents() const {
  RenderOptions opts;
  opts.keep_tuples = options_.keep_tuples;
  return document_.RenderEvents(opts);
}

StatusOr<std::string> ResultDisplay::CurrentText() const {
  XmlSerializer::Options opts;
  opts.pretty = options_.pretty;
  return XmlSerializer::ToXml(CurrentEvents(), opts);
}

}  // namespace xflux
