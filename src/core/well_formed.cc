#include "core/well_formed.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace xflux {

Status CheckWellFormed(const EventVec& events, StreamId i) {
  std::vector<Symbol> stack;
  for (const Event& e : events) {
    if (e.id != i) continue;
    switch (e.kind) {
      case EventKind::kStartElement:
        stack.push_back(e.tag);
        break;
      case EventKind::kEndElement:
        if (stack.empty()) {
          return Status::InvalidArgument(
              "unmatched end element </" + std::string(e.tag_name()) +
              "> in stream " + std::to_string(i));
        }
        if (stack.back() != e.tag) {
          return Status::InvalidArgument(
              "mismatched tags <" + std::string(TagSpelling(stack.back())) +
              "> vs </" + std::string(e.tag_name()) + "> in stream " +
              std::to_string(i));
        }
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  if (!stack.empty()) {
    return Status::InvalidArgument(
        "unclosed element <" + std::string(TagSpelling(stack.back())) +
        "> in stream " + std::to_string(i));
  }
  return Status::OK();
}

Status ValidateUpdateStream(const EventVec& events) {
  struct OpenBracket {
    EventKind kind;
    StreamId target;
  };
  // Region ids currently open (content may arrive for them).
  std::unordered_map<StreamId, OpenBracket> open;
  // Region ids whose bracket has closed (content may no longer arrive),
  // unless the id is re-opened by a later bracket (id reuse is legal).
  std::unordered_set<StreamId> closed;
  // Ids that have ever appeared as a region, to validate WF per region.
  std::unordered_set<StreamId> seen_regions;

  for (const Event& e : events) {
    if (e.IsUpdateStart()) {
      if (open.count(e.uid)) {
        return Status::InvalidArgument("region " + std::to_string(e.uid) +
                                       " opened twice concurrently");
      }
      closed.erase(e.uid);  // id reuse: the latest bracket becomes active
      open[e.uid] = {e.kind, e.id};
      seen_regions.insert(e.uid);
    } else if (e.IsUpdateEnd()) {
      auto it = open.find(e.uid);
      if (it == open.end()) {
        return Status::InvalidArgument("end bracket for region " +
                                       std::to_string(e.uid) +
                                       " without matching start");
      }
      if (MatchingUpdateEnd(it->second.kind) != e.kind ||
          it->second.target != e.id) {
        return Status::InvalidArgument("mismatched update brackets for region " +
                                       std::to_string(e.uid));
      }
      open.erase(it);
      closed.insert(e.uid);
    } else if (e.IsSimple() && e.kind != EventKind::kStartStream &&
               e.kind != EventKind::kEndStream) {
      // Content for a closed region is a protocol violation.
      if (closed.count(e.id) && !open.count(e.id)) {
        return Status::InvalidArgument("content for closed region " +
                                       std::to_string(e.id));
      }
    }
  }
  if (!open.empty()) {
    return Status::InvalidArgument("unclosed update bracket for region " +
                                   std::to_string(open.begin()->first));
  }
  for (StreamId r : seen_regions) {
    XFLUX_RETURN_IF_ERROR(CheckWellFormed(events, r));
  }
  return Status::OK();
}

}  // namespace xflux
