// Region lineage tracking.
//
// The paper works with one global event stream composed of virtual
// substreams.  An operator is declared over base stream numbers, but the
// *content of an update addressed to that stream* arrives under a fresh
// region id — it still semantically belongs to the operator's input.  The
// registry records, for every region id, the base stream at the root of its
// update chain, so a stage can decide applicability with one lookup.

#ifndef XFLUX_CORE_STREAM_REGISTRY_H_
#define XFLUX_CORE_STREAM_REGISTRY_H_

#include <unordered_map>
#include <unordered_set>

#include "core/event.h"

namespace xflux {

/// Maps region ids to the base stream their update chain roots at.
class StreamRegistry {
 public:
  /// Returns the base stream `id` descends from; an id never seen in a
  /// bracket is its own root (it *is* a base stream).
  StreamId RootOf(StreamId id) const {
    auto it = root_.find(id);
    return it == root_.end() ? id : it->second;
  }

  /// Declares `id` a base stream: update brackets that reuse it as a region
  /// id (the paper's concatenation does this deliberately) never re-root
  /// it.
  void RegisterBase(StreamId id) { bases_.insert(id); }

  /// Declares that stream `id` carries data belonging to base stream
  /// `root` — used by operators whose output merges streams (e.g.
  /// concatenation's per-tuple ids belong to its output).
  void AddAlias(StreamId id, StreamId root) { root_[id] = RootOf(root); }

  /// Bookkeeping hook (idempotent): sU(i,j) roots region j at i's root,
  /// unless j is a registered base stream.
  void OnEvent(const Event& e) {
    if (e.IsUpdateStart() && bases_.count(e.uid) == 0) {
      root_.try_emplace(e.uid, RootOf(e.id));
    }
  }

  /// Declares `clone_id` the clone-parallel of `original_id` (CloneFilter
  /// registers every duplicated update region).  A binary operator's
  /// wrapper uses this to process both parallels against one state copy —
  /// the two regions carry the data and condition views of the same
  /// content.
  void AddPartner(StreamId clone_id, StreamId original_id) {
    partner_[clone_id] = original_id;
  }

  /// The original region `id` is a clone-parallel of, or 0.
  StreamId PartnerOf(StreamId id) const {
    auto it = partner_.find(id);
    return it == partner_.end() ? 0 : it->second;
  }

  /// Folds a per-stage replica back into the root registry (parallel
  /// executor drain).  Lineage facts are write-once per id — an id roots
  /// once and partners once, with the same value wherever it was observed —
  /// so try_emplace/set-union reconstruct exactly the map a serial run
  /// would have built.
  void MergeFrom(const StreamRegistry& other) {
    for (const auto& [id, root] : other.root_) root_.try_emplace(id, root);
    for (const auto& [id, partner] : other.partner_) {
      partner_.try_emplace(id, partner);
    }
    bases_.insert(other.bases_.begin(), other.bases_.end());
  }

 private:
  std::unordered_map<StreamId, StreamId> root_;
  std::unordered_map<StreamId, StreamId> partner_;
  std::unordered_set<StreamId> bases_;
};

}  // namespace xflux

#endif  // XFLUX_CORE_STREAM_REGISTRY_H_
