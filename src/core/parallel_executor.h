// Threaded pipeline-stage scheduler (DESIGN.md §6).
//
// The executor splits a pipeline's stage chain into contiguous segments,
// runs each segment on its own worker thread, and connects neighbors with
// bounded SPSC queues carrying EventBatch runs — the Koch-style
// "event processors joined by bounded buffers" shape.  Order is preserved
// end to end (one queue between neighbors, FIFO, one producer, one
// consumer), per-stage runtime ids come from private blocks (pipeline.h),
// and registry knowledge is replicated per segment, so a parallel run
// produces byte-identical output to the serial run of the same stream.
//
// Lifecycle: Pipeline::EnableParallel constructs the executor (rebinding
// every stage's StageContext to its segment's service replicas and
// repointing segment-boundary stages at queue-writer sinks), the feeder
// thread pushes batches into segment 0's queue, and Pipeline::Finish
// closes the queue chain, joins the workers, merges the replicas back
// into the root services and restores serial wiring.

#ifndef XFLUX_CORE_PARALLEL_EXECUTOR_H_
#define XFLUX_CORE_PARALLEL_EXECUTOR_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "core/fix_registry.h"
#include "core/pipeline.h"
#include "core/stream_registry.h"
#include "util/error_channel.h"
#include "util/metrics.h"
#include "util/spsc_queue.h"

namespace xflux {

/// See file comment.  Owned by the Pipeline; public only because engine
/// and tests configure it via Pipeline::EnableParallel.
class ParallelExecutor : public EventSink, public FactBroadcaster {
 public:
  /// Splits `pipeline`'s chain into min(options.threads, stage_count)
  /// segments and launches the workers.  The pipeline must be wired
  /// (SetSink done) and must not have seen events yet.
  ParallelExecutor(Pipeline* pipeline, const ParallelOptions& options);

  /// Joins the workers if Finish was never called (abnormal teardown);
  /// never merges in that case.
  ~ParallelExecutor() override;

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  // EventSink: the feeder side.  Accept coalesces events into
  // options.batch_events-sized runs; AcceptBatch forwards a run as-is.
  // Called from the thread that owns Pipeline::Push (the session thread).
  void Accept(Event event) override;
  void AcceptBatch(EventBatch batch) override;

  /// Flushes the feeder, closes the queue chain, joins all workers, merges
  /// per-segment Metrics/FixRegistry/StreamRegistry replicas into the root
  /// services, stamps queue high-water marks into the segment-head
  /// StageStats records, and rebinds every StageContext back to the root.
  /// Idempotent.
  void Finish();

  bool finished() const { return finished_; }

  // FactBroadcaster: append `fact` to every segment's inbox.  Facts are
  // drained by each worker before it dispatches its next batch, which —
  // because a fact is enqueued before any event referencing its ids can
  // enter a queue — guarantees a replica knows a fact before the first
  // lookup that needs it (DESIGN.md §6 has the full argument).
  void Broadcast(const RegistryFact& fact) override;

  size_t segment_count() const { return segments_.size(); }

  /// Queue depth high-water marks, feeder queue first.
  std::vector<size_t> QueueHighWaterMarks() const;

 private:
  /// Batches events emitted by a segment's last stage into the next
  /// segment's input queue.  Lives on the producing segment's thread.
  class BoundarySink : public EventSink {
   public:
    BoundarySink(SpscQueue<EventBatch>* queue, size_t batch_events)
        : queue_(queue), batch_events_(batch_events) {}

    void Accept(Event event) override {
      pending_.push_back(std::move(event));
      if (pending_.size() >= batch_events_) Flush();
    }
    void AcceptBatch(EventBatch batch) override {
      Flush();  // keep order: singles queued before this run go first
      queue_->Push(std::move(batch));
    }
    /// Ships whatever is pending (end of an input batch / end of stream).
    void Flush() {
      if (pending_.empty()) return;
      EventBatch out;
      out.swap(pending_);
      queue_->Push(std::move(out));
    }

   private:
    SpscQueue<EventBatch>* queue_;
    size_t batch_events_;
    EventBatch pending_;
  };

  /// One contiguous run of stages executing on one worker thread, plus the
  /// replicas of every shared service its stages touch.
  struct Segment {
    size_t first = 0;  ///< stage index range, inclusive
    size_t last = 0;
    std::unique_ptr<SpscQueue<EventBatch>> in;  ///< this segment's input
    std::unique_ptr<BoundarySink> out;  ///< null for the last segment
    Metrics metrics;
    FixRegistry fix;
    StreamRegistry streams;
    ErrorChannel errors;
    std::mutex facts_mu;
    std::vector<RegistryFact> facts;
    std::thread thread;
  };

  void WorkerLoop(size_t segment_index);
  void DrainFacts(Segment* seg);
  void FlushFeeder();

  /// Points every stage's StageContext in [seg.first, seg.last] at the
  /// segment replicas (or back at the root when `seg` is null).
  void BindSegmentServices(Segment* seg, size_t first, size_t last);

  Pipeline* pipeline_;
  ParallelOptions options_;
  std::vector<std::unique_ptr<Segment>> segments_;
  EventBatch feeder_pending_;
  bool finished_ = false;
};

}  // namespace xflux

#endif  // XFLUX_CORE_PARALLEL_EXECUTOR_H_
