#include "core/trace_sink.h"

namespace xflux {

void TraceSink::Record(const Event& event) {
  ++seen_;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(event);
    return;
  }
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
}

EventVec TraceSink::Snapshot() const {
  EventVec out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string TraceSink::Dump() const {
  std::string out = options_.label;
  out += ": last " + std::to_string(ring_.size()) + " of " +
         std::to_string(seen_) + " events";
  if (events_dropped() > 0) {
    out += " (" + std::to_string(events_dropped()) + " older dropped)";
  }
  out += '\n';
  uint64_t seq = events_dropped();
  for (const Event& e : Snapshot()) {
    out += "  #" + std::to_string(seq++) + ' ' + e.ToString() + '\n';
  }
  return out;
}

}  // namespace xflux
