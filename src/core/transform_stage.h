// The state-adjustment wrapper W of paper Section IV.
//
// Wraps a StateTransformer written for plain streams into a pipeline stage
// that handles arbitrary incoming updates:
//
//  - one set of state copies is kept per mutable region (the paper's
//    start / end / shadow maps).  The copies are copy-on-write snapshots
//    (util/cow.h): logically independent as the paper requires, physically
//    shared until an adjust or process call actually writes one,
//  - each region carries order timestamps reflecting its position in the
//    stream had updates been applied eagerly.  We refine the paper's single
//    order[id] into a start key (assigned at bracket open) and an end key
//    (assigned at close): an update adjusts a start snapshot only if it is
//    positioned before the region opened, and an end snapshot only if it is
//    positioned before the region's content finished,
//  - when an update completes, the affected snapshots — and the live tail
//    state — are fixed up through the operator's Adjust function (the
//    paper's adj(uid, s1, s2)); events produced while adjusting are emitted
//    downstream,
//  - hide/show swap the end state against the start/shadow copies,
//  - for non-inert operators the wrapper also snapshots the regions the
//    operator itself emits (the predicate wraps every top-level element in a
//    mutable region: "every top-level element from e1 has its own substream
//    id, and thus its own copy of the state"), so retroactive updates can
//    flip decisions made long ago,
//  - fixed regions (Section V mutability analysis) have their states
//    evicted, and updates addressed to fixed regions are dropped wholesale.
//
// Operators therefore never see update events at all: they process simple
// events against whichever state copy the wrapper hands them.

#ifndef XFLUX_CORE_TRANSFORM_STAGE_H_
#define XFLUX_CORE_TRANSFORM_STAGE_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/pipeline.h"
#include "core/state_transformer.h"
#include "util/cow.h"
#include "util/order_key.h"

namespace xflux {

/// See file comment.
///
/// The `immune` configuration is the compile-time fix/freeze of DESIGN.md
/// §10: when the update-independence pass proves the wrapped operator can
/// never observe an update-dependent value, the whole S5 apparatus above
/// is skipped — update brackets and hide/show/freeze events are forwarded
/// unchanged, simple events are processed against the single live state,
/// no per-region snapshots are taken, and the stage runs registry-passive
/// (see Filter::set_registry_passive).  Sound because, under the pass's
/// guarantee, any update content reaching this stage is balanced markup
/// with no stage-matched tags: processing it is state-neutral, every
/// snapshot the wrapper would have taken is value-equal to the live
/// state, and every adjust/fold is the identity.
class TransformStage : public Filter {
 public:
  TransformStage(PipelineContext* context,
                 std::unique_ptr<StateTransformer> transformer,
                 bool immune = false);

  StateTransformer* transformer() { return transformer_.get(); }

  /// True when this stage runs the update-independent fast path.
  bool immune() const { return immune_; }

  /// Number of regions this stage currently keeps state copies for.
  size_t tracked_region_count() const { return states_.size(); }

  /// Number of those regions whose brackets are still open.
  size_t open_region_count() const { return open_regions_.size(); }

  /// Ids of all tracked regions (diagnostics).
  std::vector<StreamId> TrackedRegionIds() const {
    std::vector<StreamId> ids;
    ids.reserve(states_.size());
    for (const auto& [id, rs] : states_) ids.push_back(id);
    return ids;
  }

  /// Clone-parallel alias entries currently held (boundedness gauge:
  /// entries die with the region they point at).
  size_t alias_count() const { return region_alias_.size(); }

  /// Update regions currently being swallowed (open dropped brackets).
  size_t dropping_count() const { return dropping_.size(); }

 protected:
  void Dispatch(Event event) override;

  std::string StageName() const override { return transformer_->Name(); }

 private:
  // The per-region snapshots are copy-on-write handles (util/cow.h): a
  // snapshot is a refcount bump, and the deep OperatorState clone happens
  // only when Mut() is about to write a shared object.  Regions the stream
  // never revisits therefore share one physical state with the live tail.
  using CowState = Cow<OperatorState>;

  struct RegionState {
    CowState start;   // state at the region's start
    CowState end;     // state after its current content
    CowState shadow;  // saved end while hidden
    OrderKey order;      // position of the region's start
    OrderKey end_order;  // position of the region's close (once closed)
    // Last position key handed out inside this region; nested regions are
    // ordered after it, within the span.
    OrderKey content_cursor;
    // Upper bound of the region's positional span (exclusive).  Max for
    // regions whose content sits at the live head of the stream.
    OrderKey span_end = OrderKey::Max();
    // True when the region's position is retro-located (insert/replace
    // content, or a region nested inside one): its close key stays within
    // the span instead of at the live head.
    bool positional = false;
    bool closed = false;
    bool output = false;  // region emitted by this stage's own operator
    // True for sR/sB/sA regions: their effect reaches the live tail through
    // a delta fold at their close, not through direct processing.
    bool delta_fold = false;
    // True when simple events carrying the region's own id were processed
    // against its state (as opposed to pass-through content carrying the
    // target id); decides the eM fold direction.
    bool saw_uid_content = false;
  };

  bool Relevant(StreamId id);
  // The handle for the current position of stream `id`: a tracked region's
  // end state, or the live tail state for base streams.
  CowState& CurHandle(StreamId id);
  void SetCurState(StreamId id, CowState state);
  // Write access through `handle`, counting the deep clone if one was
  // needed; Share is the O(1) logical copy, also counted.
  OperatorState* Mut(CowState& handle);
  CowState Share(const CowState& handle);
  // Next fresh key after the last position handed out (stream order).
  OrderKey NextGlobalKey();
  // Position key for a new mutable region targeting `target`: inside the
  // target region's span when it is tracked and open, at the live head
  // otherwise.  Returns whether the key is retro-located via `positional`
  // and the containing span bound via `span_end`.
  OrderKey OrderForMutable(StreamId target, bool* positional,
                           OrderKey* span_end);
  // Smallest existing key strictly greater / largest strictly smaller.
  OrderKey NextKeyAfter(const OrderKey& key) const;
  OrderKey PrevKeyBefore(const OrderKey& key) const;
  RegionState* CreateRegion(StreamId uid, CowState start, CowState end,
                            OrderKey order, bool output);
  void CloseRegion(StreamId uid, RegionState* rs);
  void Evict(StreamId id);
  // The paper's adj(uid, s1, s2): adjusts every snapshot positioned after
  // `pivot` plus the live tail state.
  void Adj(const OrderKey& pivot, StreamId uid, const OperatorState& s1,
           const OperatorState& s2);

  void OnUpdateStart(const Event& e);
  void OnUpdateEnd(const Event& e);
  void OnHide(const Event& e);
  void OnShow(const Event& e);
  void OnFreeze(const Event& e);
  // Registers snapshots for regions the operator itself emits, then
  // forwards the event downstream.
  void EmitFromOperator(Event e);

  std::unique_ptr<StateTransformer> transformer_;
  bool immune_ = false;
  CowState main_end_;  // live tail state
  OrderKey global_cursor_;  // last position key handed out in stream order
  std::unordered_map<StreamId, RegionState> states_;
  std::map<OrderKey, std::vector<StreamId>> starts_by_key_;
  std::map<OrderKey, std::vector<StreamId>> ends_by_key_;  // closed regions
  std::unordered_set<StreamId> open_regions_;
  std::set<OrderKey> all_keys_;  // for Between queries
  // Regions whose updates the consumer refuses (fixed targets): their
  // content is swallowed until the bracket closes.
  std::unordered_set<StreamId> dropping_;
  // Clone-parallel regions sharing the original's state copy: a binary
  // operator sees the data view and the condition view of the same content
  // through one state, just as it does for the base streams.
  std::unordered_map<StreamId, StreamId> region_alias_;
};

}  // namespace xflux

#endif  // XFLUX_CORE_TRANSFORM_STAGE_H_
