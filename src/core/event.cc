#include "core/event.h"

#include "util/check.h"

namespace xflux {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStartStream: return "sS";
    case EventKind::kEndStream: return "eS";
    case EventKind::kStartTuple: return "sT";
    case EventKind::kEndTuple: return "eT";
    case EventKind::kStartElement: return "sE";
    case EventKind::kEndElement: return "eE";
    case EventKind::kCharacters: return "cD";
    case EventKind::kStartMutable: return "sM";
    case EventKind::kEndMutable: return "eM";
    case EventKind::kStartReplace: return "sR";
    case EventKind::kEndReplace: return "eR";
    case EventKind::kStartInsertBefore: return "sB";
    case EventKind::kEndInsertBefore: return "eB";
    case EventKind::kStartInsertAfter: return "sA";
    case EventKind::kEndInsertAfter: return "eA";
    case EventKind::kFreeze: return "freeze";
    case EventKind::kHide: return "hide";
    case EventKind::kShow: return "show";
  }
  return "??";
}

EventKind MatchingUpdateEnd(EventKind start) {
  EventKind end;
  XFLUX_CHECK(TryMatchingUpdateEnd(start, &end) && "not an update start");
  return end;
}

bool TryMatchingUpdateEnd(EventKind start, EventKind* end) {
  switch (start) {
    case EventKind::kStartMutable: *end = EventKind::kEndMutable; return true;
    case EventKind::kStartReplace: *end = EventKind::kEndReplace; return true;
    case EventKind::kStartInsertBefore:
      *end = EventKind::kEndInsertBefore;
      return true;
    case EventKind::kStartInsertAfter:
      *end = EventKind::kEndInsertAfter;
      return true;
    default:
      return false;
  }
}

std::string Event::ToString() const {
  std::string out = EventKindName(kind);
  out += '(';
  out += std::to_string(id);
  switch (kind) {
    case EventKind::kStartElement:
    case EventKind::kEndElement:
      out += ",\"";
      out += tag_name();
      out += '"';
      break;
    case EventKind::kCharacters:
      out += ",\"";
      out += chars();
      out += '"';
      break;
    case EventKind::kStartMutable:
    case EventKind::kEndMutable:
    case EventKind::kStartReplace:
    case EventKind::kEndReplace:
    case EventKind::kStartInsertBefore:
    case EventKind::kEndInsertBefore:
    case EventKind::kStartInsertAfter:
    case EventKind::kEndInsertAfter:
      out += ',';
      out += std::to_string(uid);
      break;
    default:
      break;
  }
  out += ')';
  return out;
}

std::string ToString(const EventVec& events) {
  std::string out = "[ ";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ", ";
    out += events[i].ToString();
  }
  out += " ]";
  return out;
}

}  // namespace xflux
