#include "core/parallel_executor.h"

#include <algorithm>

namespace xflux {

ParallelExecutor::ParallelExecutor(Pipeline* pipeline,
                                   const ParallelOptions& options)
    : pipeline_(pipeline), options_(options) {
  if (options_.batch_events < 1) options_.batch_events = 1;
  size_t stage_count = pipeline_->stage_count();
  size_t workers = static_cast<size_t>(std::max(options_.threads, 1));
  size_t n = std::min(workers, stage_count);
  PipelineContext* root = pipeline_->context();

  // Near-equal contiguous split: the first (stage_count % n) segments get
  // one extra stage.  Stage cost is not uniform, but a static split keeps
  // every queue strictly SPSC; rebalancing is future work (ROADMAP).
  size_t base = stage_count / n;
  size_t rem = stage_count % n;
  size_t begin = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t size = base + (i < rem ? 1 : 0);
    auto seg = std::make_unique<Segment>();
    seg->first = begin;
    seg->last = begin + size - 1;
    seg->in = std::make_unique<SpscQueue<EventBatch>>(options_.queue_capacity);
    // Replicas start from the root's pre-run knowledge (construction-time
    // RegisterBase / SetImmutable calls from operator constructors).
    seg->fix = *root->fix();
    seg->streams = *root->streams();
    segments_.push_back(std::move(seg));
    begin += size;
  }

  // Wire segment boundaries through queues and rebind stage views.
  for (size_t i = 0; i < n; ++i) {
    Segment* seg = segments_[i].get();
    if (i + 1 < n) {
      seg->out = std::make_unique<BoundarySink>(segments_[i + 1]->in.get(),
                                                options_.batch_events);
      pipeline_->stage(seg->last)->SetNext(seg->out.get());
    }
    BindSegmentServices(seg, seg->first, seg->last);
  }

  for (size_t i = 0; i < n; ++i) {
    segments_[i]->thread = std::thread(&ParallelExecutor::WorkerLoop, this, i);
  }
}

ParallelExecutor::~ParallelExecutor() {
  if (finished_) return;
  // Abnormal teardown (pipeline destroyed mid-run without Finish): close
  // the chain and join so no thread outlives the stages, but skip the
  // merge — the owner is going away.
  segments_.front()->in->Close();
  for (auto& seg : segments_) {
    if (seg->thread.joinable()) seg->thread.join();
  }
}

void ParallelExecutor::Accept(Event event) {
  feeder_pending_.push_back(std::move(event));
  if (feeder_pending_.size() >= options_.batch_events) FlushFeeder();
}

void ParallelExecutor::AcceptBatch(EventBatch batch) {
  FlushFeeder();  // keep order: singles pushed before this run go first
  segments_.front()->in->Push(std::move(batch));
}

void ParallelExecutor::FlushFeeder() {
  if (feeder_pending_.empty()) return;
  EventBatch out;
  out.swap(feeder_pending_);
  segments_.front()->in->Push(std::move(out));
}

void ParallelExecutor::Broadcast(const RegistryFact& fact) {
  for (auto& seg : segments_) {
    std::lock_guard<std::mutex> lock(seg->facts_mu);
    seg->facts.push_back(fact);
  }
}

void ParallelExecutor::DrainFacts(Segment* seg) {
  std::vector<RegistryFact> facts;
  {
    std::lock_guard<std::mutex> lock(seg->facts_mu);
    if (seg->facts.empty()) return;
    facts.swap(seg->facts);
  }
  for (const RegistryFact& f : facts) {
    switch (f.kind) {
      case RegistryFact::kSetImmutable:
        seg->fix.SetImmutable(f.a);
        break;
      case RegistryFact::kAddPartner:
        seg->streams.AddPartner(f.a, f.b);
        break;
      case RegistryFact::kRegisterBase:
        seg->streams.RegisterBase(f.a);
        break;
      case RegistryFact::kSetFixed:
        seg->fix.SetFixed(f.a, f.b != 0);
        break;
      // Feeder source bookkeeping, replayed through the same OnEvent code
      // path the root took so classification (including the IsFixed
      // inheritance in kDeriveRegion) resolves identically.
      case RegistryFact::kOpenRegion: {
        Event e = Event::StartMutable(f.b, f.a);
        seg->fix.OnEvent(e);
        seg->streams.OnEvent(e);
        break;
      }
      case RegistryFact::kDeriveRegion: {
        Event e = Event::StartReplace(f.b, f.a);
        seg->fix.OnEvent(e);
        seg->streams.OnEvent(e);
        break;
      }
      case RegistryFact::kFreezeRegion:
        seg->fix.OnEvent(Event::Freeze(f.a));
        break;
    }
  }
}

void ParallelExecutor::WorkerLoop(size_t segment_index) {
  Segment* seg = segments_[segment_index].get();
  Filter* entry = pipeline_->stage(seg->first);
  EventBatch batch;
  while (seg->in->Pop(&batch)) {
    // Facts first: anything broadcast before this batch entered the queue
    // must be visible to the replicas before the batch's events are looked
    // up against them.
    DrainFacts(seg);
    // Per-event dispatch, NOT AcceptBatch: a serial mid-chain stage
    // receives events one at a time (Emit -> Accept), so its registry
    // bookkeeping interleaves with its decisions.  AcceptBatch would
    // pre-apply the whole run's bookkeeping first, letting a stage see an
    // in-flight freeze *before* dispatching the update-end that precedes
    // it — and synthesize freezes serial never emits.
    for (Event& e : batch) entry->Accept(std::move(e));
    batch = EventBatch();
    if (seg->out != nullptr) seg->out->Flush();
  }
  // Input closed and drained: push the tail downstream, then cascade the
  // shutdown so the next segment drains in turn.
  DrainFacts(seg);
  if (seg->out != nullptr) seg->out->Flush();
  if (segment_index + 1 < segments_.size()) {
    segments_[segment_index + 1]->in->Close();
  }
}

void ParallelExecutor::BindSegmentServices(Segment* seg, size_t first,
                                           size_t last) {
  PipelineContext* root = pipeline_->context();
  for (size_t j = first; j <= last; ++j) {
    StageContext* view = pipeline_->stage(j)->context_;
    if (seg != nullptr) {
      view->metrics_ = &seg->metrics;
      view->fix_ = &seg->fix;
      view->streams_ = &seg->streams;
      view->errors_ = &seg->errors;
      view->bus_ = this;
    } else {
      view->metrics_ = root->metrics();
      view->fix_ = root->fix();
      view->streams_ = root->streams();
      view->errors_ = root->errors();
      view->bus_ = nullptr;
    }
  }
}

void ParallelExecutor::Finish() {
  if (finished_) return;
  FlushFeeder();
  segments_.front()->in->Close();
  for (auto& seg : segments_) {
    if (seg->thread.joinable()) seg->thread.join();
  }
  PipelineContext* root = pipeline_->context();
  for (auto& seg : segments_) {
    root->metrics()->MergeFrom(seg->metrics);
    root->fix()->MergeFrom(seg->fix);
    root->streams()->MergeFrom(seg->streams);
    // The segment-head stage's record reports how deep its input queue got.
    if (StageStats* head_stats = pipeline_->stage(seg->first)->stats_) {
      head_stats->queue_depth_hwm = seg->in->high_water();
    }
    BindSegmentServices(nullptr, seg->first, seg->last);
  }
  finished_ = true;
}

std::vector<size_t> ParallelExecutor::QueueHighWaterMarks() const {
  std::vector<size_t> marks;
  marks.reserve(segments_.size());
  for (const auto& seg : segments_) marks.push_back(seg->in->high_water());
  return marks;
}

}  // namespace xflux
