// Online protocol enforcement for hostile update streams.
//
// The correctness story of every downstream operator rests on its input
// satisfying the WF_i judgment and the update-bracket discipline of paper
// Sections II-III.  The offline checkers (core/well_formed.h) verify a full
// EventVec after the fact; the ProtocolGuard is their incremental
// counterpart: a pipeline Filter, inserted as the *first* stage
// (Pipeline::InsertFront / QuerySession::Options), that validates each
// source event as it arrives using O(depth + open-regions) state —
// per-stream element stacks plus one record per open update bracket.
//
// The guard additionally enforces ResourceLimits (element-nesting depth,
// concurrently-open regions, pipeline buffered bytes via the Metrics
// gauges fed by the BufferLedger accounting), so an adversarial stream can
// neither corrupt downstream state nor grow it without bound.
//
// On a violation the guard applies a recovery Policy:
//  - kFailFast: report the violation on the pipeline's error channel; every
//    stage stops dispatching and the caller reads the Status.
//  - kDropRegion: discard the offending update region and keep the query
//    running.  The region's already-forwarded prefix is retracted through
//    the regular freeze/hide machinery: the guard synthesizes end-element
//    closures, the matching end bracket, then hide(uid) + freeze(uid) —
//    the state-adjustment wrapper retracts the partial content's effect and
//    the display reclaims it (the dynamic analogue of discarding updates a
//    query cannot be affected by).  Violations not attributable to a region
//    (base-stream structure) escalate to fail-fast.
//  - kResync: close every open region (as above) and every open element,
//    then skip input until the next balanced bracket point — the next
//    stream boundary (sS/eS), where brackets and elements are trivially
//    balanced — and resume with fresh guard state.
//
// Invariant, relied on by the fault-injection suite: whatever the input,
// the guard's *output* always satisfies ValidateUpdateStream (under
// kDropRegion/kResync) or is a clean prefix of the input (kFailFast).

#ifndef XFLUX_CORE_PROTOCOL_GUARD_H_
#define XFLUX_CORE_PROTOCOL_GUARD_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/pipeline.h"
#include "util/status.h"

namespace xflux {

/// Hard bounds the guard enforces per event.  0 means unlimited.
struct ResourceLimits {
  /// Maximum element-nesting depth of any one substream.
  size_t max_depth = 0;
  /// Maximum concurrently-open update brackets.
  size_t max_open_regions = 0;
  /// Maximum Metrics::ApproxStateBytes() — per-region state copies plus
  /// operator buffering (BufferLedger-accounted) plus display registry.
  /// Always fail-fast: dropping one region cannot un-buffer the past.
  int64_t max_buffered_bytes = 0;
  /// Maximum bytes one unfinished XML token (open markup or accumulated
  /// character data) may buffer in the tokenizer.  Enforced at the stream
  /// source (SaxParser::Options::max_token_bytes), not by the guard: a
  /// hostile never-closing tag must be stopped before it becomes events.
  size_t max_token_bytes = 0;
};

/// See file comment.
class ProtocolGuard : public Filter {
 public:
  enum class Policy {
    kFailFast,    ///< poison the pipeline on the first violation
    kDropRegion,  ///< discard the offending update region, keep running
    kResync,      ///< skip to the next balanced bracket point
  };

  struct Options {
    Policy policy = Policy::kFailFast;
    ResourceLimits limits;
    std::string label = "guard";  ///< stage name in stats and dumps
  };

  explicit ProtocolGuard(PipelineContext* context)
      : ProtocolGuard(context, Options()) {}
  ProtocolGuard(PipelineContext* context, Options options)
      : Filter(context), options_(std::move(options)) {
    // The guard runs first and forwards clean source events untouched;
    // the Pipeline entry points already did their registry bookkeeping.
    set_source_transparent(true);
  }

  /// Parses "failfast" / "drop" / "resync" (xflux_inspect --guard=).
  static StatusOr<Policy> ParsePolicy(std::string_view name);

  /// Tier-2 load shedding (xflux_serve): while on, *retroactive* update
  /// regions — update starts whose target is not an open base stream, i.e.
  /// replacements/insertions addressing already-streamed content — are
  /// discarded wholesale through the same swallow machinery the kDropRegion
  /// policy uses, before any operator pays for them.  Base-document content
  /// (including sM regions opened by the source) still flows, so the answer
  /// stays exact for the input consumed; it is merely *stale* with respect
  /// to the shed update tail.  Follow-on traffic addressing a shed region
  /// (chained updates, freeze/hide/show) is swallowed silently rather than
  /// reported as a violation.  Toggling mid-stream is safe: regions already
  /// forwarded stay live, regions already shed stay shed.
  void set_shed_updates(bool on) { shed_updates_ = on; }
  bool shed_updates() const { return shed_updates_; }
  /// Update regions discarded by shedding (not by a protocol violation).
  uint64_t shed_regions() const { return shed_regions_; }

  /// End-of-input signal for truncated streams (a dropped connection never
  /// sends its closing events).  Anything still open is a violation:
  /// kFailFast poisons the pipeline; the lenient policies retract every
  /// open region and synthesize closures for every open element and
  /// stream, leaving the downstream stream balanced.  Idempotent.
  void Finish();

  // -- counters (also mirrored into the pipeline Metrics) --
  uint64_t violations() const { return violations_; }
  uint64_t dropped_events() const { return dropped_events_; }
  uint64_t dropped_regions() const { return dropped_regions_; }
  uint64_t resyncs() const { return resyncs_; }

  /// The most recent violation, or OK if the stream has been clean.
  const Status& last_violation() const { return last_violation_; }

  /// Open update brackets currently tracked (diagnostics).
  size_t open_region_count() const { return open_.size(); }

 protected:
  void Dispatch(Event event) override;
  void DispatchBatch(EventBatch batch) override;
  std::string StageName() const override { return options_.label; }

 private:
  /// One open update bracket: its kind, target, and the element stack of
  /// the region's own content (the online WF_uid state).
  struct RegionInfo {
    EventKind start_kind;
    StreamId target;
    std::vector<Symbol> stack;
  };

  /// How a violation can be recovered, decided while checking.
  enum class Offense {
    kNone,         // event is clean
    kRegion,       // attributable to update region offending_region_
    kEventOnly,    // the single event is garbage; dropping it suffices
    kStructural,   // base-stream structure is broken (incl. depth bound)
    kResource,     // buffered-bytes bound exceeded: fail-fast everywhere
  };

  /// Validates `e` against the guard state and advances the state on
  /// success.  On failure, sets offense_ / offending_region_.
  Status Check(const Event& e);

  /// True when `e` must be swallowed by an active discard / resync.
  bool Swallowed(const Event& e);

  /// True when shedding (or shed-region follow-up) consumed `e`.
  bool Shed(const Event& e);
  /// Marks `uid` shed: its whole bracket is swallowed and the id is
  /// remembered so follow-on updates/controls die silently.
  void ShedRegion(const Event& start);

  void HandleViolation(const Event& e, Status violation);

  /// Retracts open region `uid` downstream: synthesized element closures,
  /// the matching end bracket, hide, freeze.  `pending_ends` real end
  /// brackets for uid (and everything else carrying it) are then swallowed.
  void DiscardRegion(StreamId uid, int pending_ends);

  /// Retracts every open region and closes every open element and stream
  /// downstream, clearing all guard state.
  void CloseAllOpen();

  /// kResync entry: CloseAllOpen, then skip input until the next stream
  /// boundary.
  void EnterResync();

  void CountDropped(const Event& e);

  Options options_;
  // Base streams currently open (sS seen, eS not yet): their element
  // stacks.  The online WF_i state for i a source stream.
  std::unordered_map<StreamId, std::vector<Symbol>> base_;
  // Open update brackets by uid.
  std::unordered_map<StreamId, RegionInfo> open_;
  // Regions being discarded: uid -> end brackets still expected in the
  // input (every event carrying the uid is swallowed until then).
  std::unordered_map<StreamId, int> discard_;
  // Ids shed by set_shed_updates: later traffic addressing them (chained
  // updates, freeze/hide/show, stray content) is swallowed silently.
  // Entries are reclaimed at the region's freeze — a frozen region can
  // never be addressed again — so the set tracks shed-but-thawed ids only.
  std::unordered_set<StreamId> shed_ids_;
  bool shed_updates_ = false;
  bool resyncing_ = false;
  // Hot home-stream cache for content validation: mapped-value pointers
  // into base_/open_ are stable until that entry is erased (every erase
  // site nulls this out).  Saves two hash lookups per content event.
  StreamId hot_id_ = 0;
  std::vector<Symbol>* hot_stack_ = nullptr;
  bool hot_is_region_ = false;

  Offense offense_ = Offense::kNone;
  StreamId offending_region_ = 0;

  uint64_t violations_ = 0;
  uint64_t dropped_events_ = 0;
  uint64_t dropped_regions_ = 0;
  uint64_t resyncs_ = 0;
  uint64_t shed_regions_ = 0;
  Status last_violation_;
};

}  // namespace xflux

#endif  // XFLUX_CORE_PROTOCOL_GUARD_H_
