// The mutability analysis of paper Section V.
//
// Update ids are classified into fixed (closed to updates) and not fixed
// (open to updates) in one global map shared by every pipeline stage.  Data
// already streamed on a base stream is immutable, so base streams are fixed;
// a mutable region declared by the source is not fixed (unless the consumer
// opted out of source updates); every other update inherits its target's
// classification; freeze(id) closes an id for good.  Stages drop the state
// copies of fixed ids — this is what keeps predicate evaluation over plain
// (update-free) documents O(depth) instead of O(document).

#ifndef XFLUX_CORE_FIX_REGISTRY_H_
#define XFLUX_CORE_FIX_REGISTRY_H_

#include <unordered_map>
#include <unordered_set>

#include "core/event.h"

namespace xflux {

/// Global fix: id -> bool map (see file comment).
class FixRegistry {
 public:
  /// Disables the analysis entirely (every region reported mutable): the
  /// baseline arm of the Section V ablation, where no state can ever be
  /// evicted and predicates can never take the irrevocable cheap path.
  void set_disabled(bool disabled) { disabled_ = disabled; }

  /// True if `id` is closed to updates (the drop rule: updates addressed
  /// to a fixed region are ignored).  Unknown ids (base streams) are
  /// fixed: their data has already been emitted and cannot change.
  bool IsFixed(StreamId id) const {
    if (disabled_) return false;
    auto it = fix_.find(id);
    return it == fix_.end() ? true : it->second;
  }

  /// True if the region's *content* can never change retroactively — what
  /// predicate outcomes and comparison verdicts key their irrevocable
  /// cheap path on (Section V).  Operators declare their structural output
  /// regions immutable at creation (a descendant step's copies re-tag
  /// their content, so no update can ever address it), while the regions
  /// stay open for the structural brackets that build them.
  bool IsEffectivelyImmutable(StreamId id) const {
    if (disabled_) return false;
    return immutable_.count(id) > 0 || IsFixed(id);
  }

  void SetFixed(StreamId id, bool fixed) { fix_[id] = fixed; }
  void SetImmutable(StreamId id) { immutable_.insert(id); }

  /// Bookkeeping hook, applied to every event at every stage (idempotent):
  ///  - sM(i,j): fix[j] = false (a mutable region is open to updates; a
  ///    consumer that opts out of source updates marks the region fixed at
  ///    injection time instead, see Pipeline),
  ///  - sR/sB/sA(i,j): fix[j] = fix[i],
  ///  - freeze(id): fix[id] = true.
  void OnEvent(const Event& e) {
    switch (e.kind) {
      case EventKind::kStartMutable:
        // Idempotence note: re-seeing an sM must not reopen a region that a
        // later freeze closed, so only the first sighting writes.
        fix_.try_emplace(e.uid, false);
        break;
      case EventKind::kStartReplace:
      case EventKind::kStartInsertBefore:
      case EventKind::kStartInsertAfter:
        fix_.try_emplace(e.uid, IsFixed(e.id));
        break;
      case EventKind::kFreeze:
        fix_[e.id] = true;
        break;
      default:
        break;
    }
  }

  size_t size() const { return fix_.size(); }

  /// Folds a per-stage replica back into the root registry (parallel
  /// executor drain).  Merging follows the same latching discipline as
  /// OnEvent: for classifications both sides know, `true` (frozen/fixed)
  /// wins — a freeze observed by any stage is final — and immutability
  /// declarations union.  After the merge the root answers every query at
  /// least as "closed" as any replica did, which is what the post-drain
  /// serial continuation (e.g. ProtocolGuard::Finish retractions) needs.
  void MergeFrom(const FixRegistry& other) {
    for (const auto& [id, fixed] : other.fix_) {
      auto [it, inserted] = fix_.try_emplace(id, fixed);
      if (!inserted && fixed) it->second = true;
    }
    immutable_.insert(other.immutable_.begin(), other.immutable_.end());
  }

 private:
  std::unordered_map<StreamId, bool> fix_;
  std::unordered_set<StreamId> immutable_;
  bool disabled_ = false;
};

}  // namespace xflux

#endif  // XFLUX_CORE_FIX_REGISTRY_H_
