// Well-formedness judgments over event sequences (paper Section II).
//
// `CheckWellFormed(v, i)` asserts the paper's v ∈ WF_i: the kStartElement /
// kEndElement events with id == i in v are properly nested with matching
// tags (events of other streams are irrelevant).  `ValidateUpdateStream`
// additionally checks the bracket discipline of update events across the
// whole global stream.  Both are used heavily by the test suite as
// invariants that every operator must preserve.

#ifndef XFLUX_CORE_WELL_FORMED_H_
#define XFLUX_CORE_WELL_FORMED_H_

#include "core/event.h"
#include "util/status.h"

namespace xflux {

/// Checks the paper's WF_i judgment for stream `i` over `events`.
Status CheckWellFormed(const EventVec& events, StreamId i);

/// Checks global update-bracket discipline:
///  - every sU(i,j) is closed by a matching eU(i,j) of the same kind,
///  - the events with id == j appear only between those brackets,
///  - within each bracket, the content of stream j satisfies WF_j.
/// Regions may interleave (brackets of different uids need not nest).
Status ValidateUpdateStream(const EventVec& events);

}  // namespace xflux

#endif  // XFLUX_CORE_WELL_FORMED_H_
