// Push-based pipeline plumbing (paper Section II).
//
// A query compiles into a chain of Filters sharing one PipelineContext
// (id allocator, fix registry, lineage registry, metrics, per-stage
// stats).  Events are pushed through the chain by direct dispatch — the
// paper's "event handling" processing method — and end at an arbitrary
// EventSink, usually the result display.
//
// Each Filter sees the context through its own StageContext view.  In
// serial execution (the default) every view aliases the root services, so
// the stage-facing API costs one extra pointer indirection and nothing
// else.  Under the ParallelExecutor the views are rebound to per-segment
// replicas/shards, which is what lets stages run on worker threads without
// sharing mutable registries — see DESIGN.md §6 for the full threading
// model.

#ifndef XFLUX_CORE_PIPELINE_H_
#define XFLUX_CORE_PIPELINE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "core/fix_registry.h"
#include "core/stream_registry.h"
#include "util/check.h"
#include "util/error_channel.h"
#include "util/metrics.h"
#include "util/stage_stats.h"

namespace xflux {

class ParallelExecutor;
class StageContext;

/// First stream id the pipeline context allocates dynamically; everything
/// below is left to the source.
inline constexpr StreamId kDefaultFirstDynamicId = 1 << 20;

/// Ids in [first_dynamic_id, first_dynamic_id + kConstructionIdSpan) are
/// handed out by PipelineContext::NewStreamId — pipeline-construction-time
/// allocations (operator anchors, compiler-assigned stream numbers).
inline constexpr StreamId kConstructionIdSpan = 1 << 20;

/// Every stage additionally owns a private block of kStageIdBlock ids for
/// its *runtime* allocations (region ids minted while events flow), carved
/// out above the construction span in stage-construction order.  Because a
/// stage draws from its own block, the ids a run produces depend only on
/// the per-stage allocation order — not on how stages interleave across
/// threads — which is what keeps parallel execution byte-identical to
/// serial.  Serial runs use the same blocks, so enabling threads never
/// changes a query's output.
inline constexpr StreamId kStageIdBlock = 1 << 22;

/// One registry fact a stage broadcasts to every other stage's replica
/// under parallel execution.  Most FixRegistry/StreamRegistry knowledge
/// replicates implicitly (each replica observes the events its segment
/// sees), with two exceptions that travel on the fact bus:
///
///  - declarations about ids other stages may never see an event for
///    (SetImmutable / AddPartner / RegisterBase / SetFixed), and
///  - the feeder's source-event bookkeeping (kOpenRegion / kDeriveRegion /
///    kFreezeRegion).  A serial pipeline applies a whole pushed batch to
///    the shared registries *before* the first stage dispatches (the root
///    loop in Pipeline::PushBatch), so every stage enjoys source-fact
///    lookahead over the full push.  Replicas reproduce that visibility by
///    replaying the same OnEvent effects from facts, which the executor
///    guarantees are drained before any event of the push is dispatched.
struct RegistryFact {
  enum Kind : uint8_t {
    kSetImmutable,   ///< FixRegistry::SetImmutable(a)
    kAddPartner,     ///< StreamRegistry::AddPartner(a, b)
    kRegisterBase,   ///< StreamRegistry::RegisterBase(a)
    kSetFixed,       ///< FixRegistry::SetFixed(a, b != 0)
    kOpenRegion,     ///< replay source sM(b, a) on fix + streams
    kDeriveRegion,   ///< replay source sR/sB/sA(b, a) on fix + streams
    kFreezeRegion,   ///< replay source freeze(a) on fix
  };
  Kind kind;
  StreamId a = 0;
  StreamId b = 0;
};

/// Sink for RegistryFacts; implemented by the ParallelExecutor (which fans
/// facts out to per-segment inboxes).  Serial pipelines have no bus.
class FactBroadcaster {
 public:
  virtual ~FactBroadcaster() = default;
  virtual void Broadcast(const RegistryFact& fact) = 0;
};

/// Shared services for all stages of one pipeline.  Stages do not touch
/// this class directly on the event path — they go through their
/// StageContext view (below); the root owns the canonical service
/// instances and the id-block allocator.
class PipelineContext {
 public:
  /// `first_dynamic_id` must be above every stream/region id the source
  /// uses; the default leaves the whole low range to sources.
  explicit PipelineContext(StreamId first_dynamic_id = kDefaultFirstDynamicId)
      : next_id_(first_dynamic_id),
        construction_end_(first_dynamic_id + kConstructionIdSpan),
        next_stage_block_(construction_end_) {}

  /// Allocates a fresh region / substream id ("a new id that has not been
  /// used before") from the construction span.  Runtime allocations inside
  /// operators go through StageContext::NewStreamId instead.
  StreamId NewStreamId() {
    XFLUX_CHECK(next_id_ != construction_end_ &&
                "pipeline construction id span exhausted");
    return next_id_++;
  }

  /// Creates the per-stage service view for the next Filter, assigning its
  /// private runtime id block in construction order.  Called by the Filter
  /// base constructor; the context owns the view.
  StageContext* CreateStageContext();

  Metrics* metrics() { return &metrics_; }
  FixRegistry* fix() { return &fix_; }
  StreamRegistry* streams() { return &streams_; }
  StatsRegistry* stats() { return &stats_; }
  ErrorChannel* errors() { return &errors_; }
  const ErrorChannel* errors() const { return &errors_; }

  /// Reports a pipeline error.  The first non-OK status latches; once
  /// poisoned, every stage drops events instead of dispatching, so a
  /// protocol violation can never push a stage into undefined behavior —
  /// the stream simply stops and the caller reads the error via status().
  void ReportError(Status status) { errors_.Report(std::move(status)); }

  /// The first reported error, or OK.
  const Status& status() const { return errors_.status(); }
  bool poisoned() const { return !errors_.ok(); }

  /// Runtime switch for per-stage instrumentation.  Off (the default), the
  /// hot path pays one predicted branch per event and every StageStats
  /// record stays untouched; on, stages record counts and steady_clock
  /// timings in Accept/Emit.  May be flipped at any point between events
  /// (but not while a parallel run is in flight).
  void set_instrumentation(bool enabled) { instrumentation_ = enabled; }
  bool instrumentation_enabled() const { return instrumentation_; }

  /// Installs a fact bus on every stage view — existing and future — so
  /// stage-asserted registry facts (SetImmutable / AddPartner) also reach
  /// listeners outside this pipeline.  The QueryServer uses this to forward
  /// facts from a shared prefix segment to the downstream pipelines that
  /// consume its output; a plain serial session leaves it unset.  Mutually
  /// exclusive with Pipeline::EnableParallel, which rebinds the same slot
  /// for the duration of a run.
  void SetFactBus(FactBroadcaster* bus);

 private:
  StreamId next_id_;
  StreamId construction_end_;
  StreamId next_stage_block_;
  Metrics metrics_;
  FixRegistry fix_;
  StreamRegistry streams_;
  StatsRegistry stats_;
  ErrorChannel errors_;
  bool instrumentation_ = false;
  FactBroadcaster* fact_bus_ = nullptr;
  std::vector<std::unique_ptr<StageContext>> stage_contexts_;
};

/// One stage's view of the pipeline services.  The accessors mirror
/// PipelineContext's, so stage code is written once against this interface;
/// what the pointers alias is an execution-mode decision:
///
///  - serial (default): every pointer aliases the root service — the view
///    is a plain indirection, no branches, no locks;
///  - parallel: the ParallelExecutor rebinds the pointers to its
///    per-segment Metrics shard, FixRegistry/StreamRegistry replicas and
///    segment-local ErrorChannel for the duration of the run, and back to
///    the root when the run drains.
///
/// The runtime id allocator is genuinely per-stage in *both* modes (see
/// kStageIdBlock), which is the cornerstone of serial/parallel output
/// equivalence.
class StageContext {
 public:
  /// Allocates a fresh region / substream id from this stage's private
  /// block.  Deterministic per stage regardless of thread interleaving.
  StreamId NewStreamId() {
    XFLUX_CHECK(next_id_ != block_end_ && "stage runtime id block exhausted");
    return next_id_++;
  }

  Metrics* metrics() { return metrics_; }
  FixRegistry* fix() { return fix_; }
  StreamRegistry* streams() { return streams_; }
  ErrorChannel* errors() { return errors_; }
  const ErrorChannel* errors() const { return errors_; }

  /// Reports an error on the stage's channel *and* the pipeline's root
  /// channel.  In serial mode the two are the same object (one report); in
  /// parallel mode the local report stops this segment's stages while the
  /// root report latches the status the session will surface and stops the
  /// feeder — other segments keep draining their in-flight events, exactly
  /// the set a serial run would have processed before the error.
  void ReportError(Status status) {
    ErrorChannel* root = root_->errors();
    if (errors_ != root) errors_->Report(status);
    root->Report(std::move(status));
  }

  bool instrumentation_enabled() const {
    return root_->instrumentation_enabled();
  }

  /// Declares `id` immutable (FixRegistry::SetImmutable) and, under
  /// parallel execution, broadcasts the declaration to every segment's
  /// replica — immutability is asserted by the *producing* stage about ids
  /// whose events other stages may consume later.
  void SetImmutable(StreamId id) {
    fix_->SetImmutable(id);
    if (bus_ != nullptr) {
      bus_->Broadcast({RegistryFact::kSetImmutable, id, 0});
    }
  }

  /// Declares a clone-parallel pair (StreamRegistry::AddPartner), with the
  /// same broadcast rule as SetImmutable.
  void AddPartner(StreamId clone_id, StreamId original_id) {
    streams_->AddPartner(clone_id, original_id);
    if (bus_ != nullptr) {
      bus_->Broadcast({RegistryFact::kAddPartner, clone_id, original_id});
    }
  }

  /// The owning pipeline context (construction-time services; not for use
  /// on the event path).
  PipelineContext* root() { return root_; }

 private:
  friend class PipelineContext;
  friend class ParallelExecutor;

  StageContext(PipelineContext* root, StreamId block_begin,
               StreamId block_end)
      : root_(root),
        metrics_(root->metrics()),
        fix_(root->fix()),
        streams_(root->streams()),
        errors_(root->errors()),
        next_id_(block_begin),
        block_end_(block_end) {}

  PipelineContext* root_;
  Metrics* metrics_;
  FixRegistry* fix_;
  StreamRegistry* streams_;
  ErrorChannel* errors_;
  FactBroadcaster* bus_ = nullptr;
  StreamId next_id_;
  StreamId block_end_;
};

inline StageContext* PipelineContext::CreateStageContext() {
  StreamId begin = next_stage_block_;
  XFLUX_CHECK(static_cast<uint64_t>(begin) + kStageIdBlock <= (1ull << 32) &&
              "stage runtime id blocks exhausted");
  next_stage_block_ = begin + kStageIdBlock;
  stage_contexts_.push_back(std::unique_ptr<StageContext>(
      new StageContext(this, begin, begin + kStageIdBlock)));
  stage_contexts_.back()->bus_ = fact_bus_;
  return stage_contexts_.back().get();
}

inline void PipelineContext::SetFactBus(FactBroadcaster* bus) {
  fact_bus_ = bus;
  for (auto& view : stage_contexts_) view->bus_ = bus;
}

/// A pipeline stage: consumes events via Accept, produces via Emit.
class Filter : public EventSink {
 public:
  /// Creates the stage's service view (and its runtime id block) on the
  /// given context.  Stage views are assigned in construction order, so a
  /// pipeline assembled in a fixed order allocates ids deterministically.
  explicit Filter(PipelineContext* context)
      : context_(context->CreateStageContext()) {}

  /// Wires the downstream consumer; must be set before the first event.
  void SetNext(EventSink* next) { next_ = next; }

  /// Binds this stage to its StageStats record; called by Pipeline when the
  /// stage is added (the record exists even while instrumentation is off —
  /// its counters just stay zero).
  void BindStats(StatsRegistry* registry) {
    stats_ = registry->Register(StageName());
  }

  /// This stage's record, or nullptr before the stage joins a pipeline.
  const StageStats* stage_stats() const { return stats_; }

  /// Registry passivity — the "immune" configuration of compile-time
  /// update-independence (DESIGN.md §10).  A passive stage skips the
  /// per-event fix/streams OnEvent in Accept/AcceptBatch: everything it
  /// receives was already registered by whoever emitted it (the feeder's
  /// root bookkeeping loop for source events, the producing stage's Emit
  /// for everything else), so in shared-registry serial execution the
  /// calls are pure overhead.  Two execution paths must compensate:
  /// Pipeline::PushSegment performs the root bookkeeping itself when the
  /// entry stage is passive (segment feeds skip the root loop), and
  /// Pipeline::EnableParallel clears passivity outright — per-segment
  /// registry replicas learn only from their own stages' OnEvent calls.
  void set_registry_passive(bool value) { registry_passive_ = value; }
  bool registry_passive() const { return registry_passive_; }

  /// Display name for diagnostics and StageStats ("child::a", "clone", …).
  virtual std::string StageName() const { return "stage"; }

  void Accept(Event event) final {
    // A poisoned pipeline stops dispatching: the stage that reported the
    // error may hold inconsistent state, and everything after the first
    // error is cascade anyway.
    if (!context_->errors()->ok()) return;
    // Idempotent bookkeeping: every stage learns region lineage and
    // mutability from the events it sees.
    if (!source_transparent_ && !registry_passive_) {
      context_->fix()->OnEvent(event);
      context_->streams()->OnEvent(event);
    }
    context_->metrics()->CountTransformerCall();
    if (instrumented()) {
      AcceptInstrumented(std::move(event));
      return;
    }
    Dispatch(std::move(event));
  }

  void AcceptBatch(EventBatch batch) final {
    if (!context_->errors()->ok()) return;
    if (!source_transparent_ && !registry_passive_) {
      for (const Event& e : batch) {
        context_->fix()->OnEvent(e);
        context_->streams()->OnEvent(e);
      }
    }
    context_->metrics()->CountTransformerCall(batch.size());
    if (instrumented()) {
      AcceptBatchInstrumented(std::move(batch));
      return;
    }
    DispatchBatch(std::move(batch));
  }

 protected:
  /// Stage logic: consume one event, call Emit zero or more times.
  virtual void Dispatch(Event event) = 0;

  /// Batch stage logic.  Must be observably identical to Dispatch-ing each
  /// event in order (the default does exactly that); straight-through
  /// stages override it to forward the whole run with one EmitBatch.
  virtual void DispatchBatch(EventBatch batch) {
    for (Event& e : batch) Dispatch(std::move(e));
  }

  /// Pushes one event downstream.  Dropped once the pipeline is poisoned
  /// (a stage may report an error mid-Dispatch and keep emitting).
  void Emit(Event event) {
    assert(next_ != nullptr && "pipeline stage has no downstream sink");
    if (!context_->errors()->ok()) return;
    context_->metrics()->CountEventEmitted();
    // Generated events must be visible to the registries even before the
    // next stage runs (the next stage may be the display).
    context_->fix()->OnEvent(event);
    context_->streams()->OnEvent(event);
    if (instrumented()) {
      EmitInstrumented(std::move(event));
      return;
    }
    next_->Accept(std::move(event));
  }

  /// Pushes a run of events downstream with one virtual call.
  void EmitBatch(EventBatch batch) {
    assert(next_ != nullptr && "pipeline stage has no downstream sink");
    if (!context_->errors()->ok()) return;
    if (!source_transparent_) {
      for (const Event& e : batch) {
        context_->fix()->OnEvent(e);
        context_->streams()->OnEvent(e);
      }
    }
    // Pass-through forwarding re-registers nothing when the stage is
    // source-transparent; either way the count is one bulk add.
    context_->metrics()->CountEventEmitted(batch.size());
    if (instrumented()) {
      EmitBatchInstrumented(std::move(batch));
      return;
    }
    next_->AcceptBatch(std::move(batch));
  }

  StageContext* context() { return context_; }

  /// Opt-out of the idempotent per-event registry bookkeeping, for
  /// *first-stage* filters that forward source events unchanged (the
  /// protocol guard): Pipeline::Push/PushBatch already ran fix/streams
  /// OnEvent on every source event, so re-running it here only costs.
  /// Stage-synthesized events still register through the single-event
  /// Emit, which keeps full bookkeeping.
  void set_source_transparent(bool value) { source_transparent_ = value; }

  /// The stage's stats record while instrumentation is on, else nullptr —
  /// stages attribute operator-internal gauges (live states, suspension
  /// queues, adjust calls) through this, keeping records untouched when
  /// instrumentation is off.
  StageStats* stats() { return instrumented() ? stats_ : nullptr; }

 private:
  friend class ParallelExecutor;  // rebinds context_ services, reads stats_

  bool instrumented() const {
    return context_->instrumentation_enabled() && stats_ != nullptr;
  }
  // Out-of-line slow paths (pipeline.cc): count the event and measure the
  // time spent in Dispatch / downstream Accept via steady_clock.
  void AcceptInstrumented(Event event);
  void EmitInstrumented(Event event);
  void AcceptBatchInstrumented(EventBatch batch);
  void EmitBatchInstrumented(EventBatch batch);

  StageContext* context_;
  EventSink* next_ = nullptr;
  StageStats* stats_ = nullptr;
  bool source_transparent_ = false;
  bool registry_passive_ = false;
};

/// Tuning for parallel pipeline execution (Pipeline::EnableParallel /
/// QuerySession::Options::threads).
struct ParallelOptions {
  /// Worker threads to run stages on; <= 0 keeps serial execution.  More
  /// threads than stages is clamped to one stage per thread.
  int threads = 0;
  /// Capacity, in EventBatch runs, of each inter-segment SPSC queue — the
  /// backpressure bound (a fast producer stalls once the consumer is this
  /// many batches behind).
  size_t queue_capacity = 64;
  /// Events the feeder and segment boundaries coalesce per queued batch.
  size_t batch_events = 64;
};

/// Owns a chain of filters plus the context, and feeds source events in.
class Pipeline {
 public:
  // Defined in pipeline.cc: ParallelExecutor is incomplete here, so every
  // special member that could destroy executor_ must be out of line.
  Pipeline();
  explicit Pipeline(StreamId first_dynamic_id);

  /// Finishes any parallel run still in flight (see Finish).
  ~Pipeline();

  PipelineContext* context() { return context_.get(); }
  const PipelineContext* context() const { return context_.get(); }

  /// The pipeline's sticky first error (see PipelineContext::ReportError).
  const Status& status() const { return context_->status(); }

  /// Appends a stage; stages are chained in insertion order.
  /// Returns a borrowed pointer to the added stage.
  Filter* Add(std::unique_ptr<Filter> stage);

  /// Constructs a stage of concrete type T in place, appends it, and
  /// returns it still typed — the preferred way to assemble pipelines:
  ///
  ///   auto* step = pipeline.AddStage<TransformStage>(
  ///       ctx, std::make_unique<ChildStep>(0, "author"));
  template <class T, class... Args>
  T* AddStage(Args&&... args) {
    auto stage = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = stage.get();
    Add(std::move(stage));
    return raw;
  }

  /// Splices a stage (typically a TraceSink tap) into the chain directly
  /// after stage `index`; works both before and after SetSink.  Returns a
  /// borrowed pointer to the inserted stage.
  Filter* InsertAfter(size_t index, std::unique_ptr<Filter> stage);

  /// Splices a stage in front of the whole chain — how a ProtocolGuard
  /// becomes the first stage of an already-compiled pipeline.  Works both
  /// before and after SetSink.  Returns a borrowed pointer.
  Filter* InsertFront(std::unique_ptr<Filter> stage);

  size_t stage_count() const { return stages_.size(); }
  Filter* stage(size_t index) { return stages_[index].get(); }

  /// Terminates the chain.  Must be called exactly once, after all Add
  /// calls and before the first Push.
  void SetSink(EventSink* sink);

  /// When disabled, mutable regions arriving from the source are classified
  /// fixed at injection — the consumer ignores source updates (Section V).
  void set_accept_source_updates(bool accept) {
    accept_source_updates_ = accept;
  }

  /// Switches event dispatch to the threaded executor: the stage chain is
  /// split into contiguous segments, one worker thread each, connected by
  /// bounded SPSC queues of EventBatch runs.  Output is deterministically
  /// identical to serial execution.  Call after SetSink and before the
  /// first Push; no-op when options.threads <= 0 or the chain is empty.
  /// The serial hot path is untouched — mode selection happens once, here,
  /// by repointing the pipeline's entry sink.
  void EnableParallel(const ParallelOptions& options);

  /// Drains and joins a parallel run: flushes pending feeder batches,
  /// closes the queue chain, joins the workers, folds the per-segment
  /// metrics shards and registry replicas back into the root services, and
  /// rewires the chain for serial dispatch (so post-drain pushes — e.g. a
  /// guard's synthesized end-of-input closures — run inline).  Idempotent;
  /// a no-op for serial pipelines.
  void Finish();

  /// True while the threaded executor is active (between EnableParallel
  /// and Finish).
  bool parallel() const { return executor_ != nullptr; }

  /// Per-queue depth high-water marks of the most recent parallel run, in
  /// upstream-to-downstream order (entry [0] is the feeder queue); empty if
  /// the pipeline never ran parallel.  Also folded into the segment-head
  /// stages' StageStats::queue_depth_hwm at Finish.
  std::vector<size_t> QueueHighWaterMarks() const;

  /// Injects one source event into the first stage.
  void Push(Event event);
  /// Injects a run of source events with one virtual call per stage that
  /// supports batching (identical semantics to Push-ing each in order).
  void PushBatch(EventBatch batch);
  void PushAll(const EventVec& events);
  /// Injects a run of events minted by an upstream pipeline *segment*
  /// (QueryServer fan-out edges).  Unlike PushBatch, delivery is strictly
  /// per event: a segment-internal stream may open and freeze a region
  /// within one run, and batch-level registry lookahead would classify it
  /// fixed before its open event reaches the stages.  The root
  /// bookkeeping loop is skipped — every non-transparent stage applies
  /// the same idempotent fix/streams OnEvent itself — except base-stream
  /// registration, which must land before the first event.  Serial only
  /// (segments never run a threaded executor).
  void PushSegment(EventBatch batch);

 private:
  friend class ParallelExecutor;  // boundary rewiring during a run

  /// Restores direct stage→stage→sink dispatch and the serial entry point.
  void RewireSerial();

  /// Parallel-mode source bookkeeping for one event: mirrors the serial
  /// root updates and broadcasts their effects so every segment replica
  /// sees them before the event (or anything after it) is dispatched.
  void BroadcastSourceBookkeeping(const Event& e);

  std::unique_ptr<PipelineContext> context_;
  std::vector<std::unique_ptr<Filter>> stages_;
  EventSink* sink_ = nullptr;
  /// Where Push/PushBatch hand events: the first stage (serial) or the
  /// executor's feeder (parallel).  Precomputed so the hot path has no
  /// mode branch.
  EventSink* entry_ = nullptr;
  bool wired_ = false;
  bool accept_source_updates_ = true;
  std::unique_ptr<ParallelExecutor> executor_;
  /// Kept after Finish for QueueHighWaterMarks (and so the executor's
  /// queues outlive any late introspection).
  std::unique_ptr<ParallelExecutor> retired_executor_;
};

}  // namespace xflux

#endif  // XFLUX_CORE_PIPELINE_H_
