// Push-based pipeline plumbing (paper Section II).
//
// A query compiles into a chain of Filters sharing one PipelineContext
// (id allocator, fix registry, lineage registry, metrics, per-stage
// stats).  Events are pushed through the chain by direct dispatch — the
// paper's "event handling" processing method — and end at an arbitrary
// EventSink, usually the result display.

#ifndef XFLUX_CORE_PIPELINE_H_
#define XFLUX_CORE_PIPELINE_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "core/fix_registry.h"
#include "core/stream_registry.h"
#include "util/error_channel.h"
#include "util/metrics.h"
#include "util/stage_stats.h"

namespace xflux {

/// First stream id the pipeline context allocates dynamically; everything
/// below is left to the source.
inline constexpr StreamId kDefaultFirstDynamicId = 1 << 20;

/// Shared services for all stages of one pipeline.
class PipelineContext {
 public:
  /// `first_dynamic_id` must be above every stream/region id the source
  /// uses; the default leaves the whole low range to sources.
  explicit PipelineContext(StreamId first_dynamic_id = kDefaultFirstDynamicId)
      : next_id_(first_dynamic_id) {}

  /// Allocates a fresh region / substream id ("a new id that has not been
  /// used before").
  StreamId NewStreamId() { return next_id_++; }

  Metrics* metrics() { return &metrics_; }
  FixRegistry* fix() { return &fix_; }
  StreamRegistry* streams() { return &streams_; }
  StatsRegistry* stats() { return &stats_; }
  ErrorChannel* errors() { return &errors_; }
  const ErrorChannel* errors() const { return &errors_; }

  /// Reports a pipeline error.  The first non-OK status latches; once
  /// poisoned, every stage drops events instead of dispatching, so a
  /// protocol violation can never push a stage into undefined behavior —
  /// the stream simply stops and the caller reads the error via status().
  void ReportError(Status status) { errors_.Report(std::move(status)); }

  /// The first reported error, or OK.
  const Status& status() const { return errors_.status(); }
  bool poisoned() const { return !errors_.ok(); }

  /// Runtime switch for per-stage instrumentation.  Off (the default), the
  /// hot path pays one predicted branch per event and every StageStats
  /// record stays untouched; on, stages record counts and steady_clock
  /// timings in Accept/Emit.  May be flipped at any point between events.
  void set_instrumentation(bool enabled) { instrumentation_ = enabled; }
  bool instrumentation_enabled() const { return instrumentation_; }

 private:
  StreamId next_id_;
  Metrics metrics_;
  FixRegistry fix_;
  StreamRegistry streams_;
  StatsRegistry stats_;
  ErrorChannel errors_;
  bool instrumentation_ = false;
};

/// A pipeline stage: consumes events via Accept, produces via Emit.
class Filter : public EventSink {
 public:
  explicit Filter(PipelineContext* context) : context_(context) {}

  /// Wires the downstream consumer; must be set before the first event.
  void SetNext(EventSink* next) { next_ = next; }

  /// Binds this stage to its StageStats record; called by Pipeline when the
  /// stage is added (the record exists even while instrumentation is off —
  /// its counters just stay zero).
  void BindStats(StatsRegistry* registry) {
    stats_ = registry->Register(StageName());
  }

  /// This stage's record, or nullptr before the stage joins a pipeline.
  const StageStats* stage_stats() const { return stats_; }

  void Accept(Event event) final {
    // A poisoned pipeline stops dispatching: the stage that reported the
    // error may hold inconsistent state, and everything after the first
    // error is cascade anyway.
    if (!context_->errors()->ok()) return;
    // Idempotent global bookkeeping: every stage learns region lineage and
    // mutability as the event passes.
    if (!source_transparent_) {
      context_->fix()->OnEvent(event);
      context_->streams()->OnEvent(event);
    }
    context_->metrics()->CountTransformerCall();
    if (instrumented()) {
      AcceptInstrumented(std::move(event));
      return;
    }
    Dispatch(std::move(event));
  }

  void AcceptBatch(EventBatch batch) final {
    if (!context_->errors()->ok()) return;
    if (source_transparent_) {
      context_->metrics()->CountTransformerCall(batch.size());
    } else {
      for (const Event& e : batch) {
        context_->fix()->OnEvent(e);
        context_->streams()->OnEvent(e);
        context_->metrics()->CountTransformerCall();
      }
    }
    if (instrumented()) {
      AcceptBatchInstrumented(std::move(batch));
      return;
    }
    DispatchBatch(std::move(batch));
  }

 protected:
  /// Stage logic: consume one event, call Emit zero or more times.
  virtual void Dispatch(Event event) = 0;

  /// Batch stage logic.  Must be observably identical to Dispatch-ing each
  /// event in order (the default does exactly that); straight-through
  /// stages override it to forward the whole run with one EmitBatch.
  virtual void DispatchBatch(EventBatch batch) {
    for (Event& e : batch) Dispatch(std::move(e));
  }

  /// Display name for diagnostics and StageStats ("child::a", "clone", …).
  virtual std::string StageName() const { return "stage"; }

  /// Pushes one event downstream.  Dropped once the pipeline is poisoned
  /// (a stage may report an error mid-Dispatch and keep emitting).
  void Emit(Event event) {
    assert(next_ != nullptr && "pipeline stage has no downstream sink");
    if (!context_->errors()->ok()) return;
    context_->metrics()->CountEventEmitted();
    // Generated events must be visible to the shared registries even before
    // the next stage runs (the next stage may be the display).
    context_->fix()->OnEvent(event);
    context_->streams()->OnEvent(event);
    if (instrumented()) {
      EmitInstrumented(std::move(event));
      return;
    }
    next_->Accept(std::move(event));
  }

  /// Pushes a run of events downstream with one virtual call.
  void EmitBatch(EventBatch batch) {
    assert(next_ != nullptr && "pipeline stage has no downstream sink");
    if (!context_->errors()->ok()) return;
    if (source_transparent_) {
      // Pass-through forwarding of source events the Pipeline entry
      // points already registered; only the count is new information.
      context_->metrics()->CountEventEmitted(batch.size());
    } else {
      for (const Event& e : batch) {
        context_->metrics()->CountEventEmitted();
        context_->fix()->OnEvent(e);
        context_->streams()->OnEvent(e);
      }
    }
    if (instrumented()) {
      EmitBatchInstrumented(std::move(batch));
      return;
    }
    next_->AcceptBatch(std::move(batch));
  }

  PipelineContext* context() { return context_; }

  /// Opt-out of the idempotent per-event registry bookkeeping, for
  /// *first-stage* filters that forward source events unchanged (the
  /// protocol guard): Pipeline::Push/PushBatch already ran fix/streams
  /// OnEvent on every source event, so re-running it here only costs.
  /// Stage-synthesized events still register through the single-event
  /// Emit, which keeps full bookkeeping.
  void set_source_transparent(bool value) { source_transparent_ = value; }

  /// The stage's stats record while instrumentation is on, else nullptr —
  /// stages attribute operator-internal gauges (live states, suspension
  /// queues, adjust calls) through this, keeping records untouched when
  /// instrumentation is off.
  StageStats* stats() { return instrumented() ? stats_ : nullptr; }

 private:
  bool instrumented() const {
    return context_->instrumentation_enabled() && stats_ != nullptr;
  }
  // Out-of-line slow paths (pipeline.cc): count the event and measure the
  // time spent in Dispatch / downstream Accept via steady_clock.
  void AcceptInstrumented(Event event);
  void EmitInstrumented(Event event);
  void AcceptBatchInstrumented(EventBatch batch);
  void EmitBatchInstrumented(EventBatch batch);

  PipelineContext* context_;
  EventSink* next_ = nullptr;
  StageStats* stats_ = nullptr;
  bool source_transparent_ = false;
};

/// Owns a chain of filters plus the context, and feeds source events in.
class Pipeline {
 public:
  Pipeline() : context_(std::make_unique<PipelineContext>()) {}
  explicit Pipeline(StreamId first_dynamic_id)
      : context_(std::make_unique<PipelineContext>(first_dynamic_id)) {}

  PipelineContext* context() { return context_.get(); }
  const PipelineContext* context() const { return context_.get(); }

  /// The pipeline's sticky first error (see PipelineContext::ReportError).
  const Status& status() const { return context_->status(); }

  /// Appends a stage; stages are chained in insertion order.
  /// Returns a borrowed pointer to the added stage.
  Filter* Add(std::unique_ptr<Filter> stage);

  /// Constructs a stage of concrete type T in place, appends it, and
  /// returns it still typed — the preferred way to assemble pipelines:
  ///
  ///   auto* step = pipeline.AddStage<TransformStage>(
  ///       ctx, std::make_unique<ChildStep>(0, "author"));
  template <class T, class... Args>
  T* AddStage(Args&&... args) {
    auto stage = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = stage.get();
    Add(std::move(stage));
    return raw;
  }

  /// Splices a stage (typically a TraceSink tap) into the chain directly
  /// after stage `index`; works both before and after SetSink.  Returns a
  /// borrowed pointer to the inserted stage.
  Filter* InsertAfter(size_t index, std::unique_ptr<Filter> stage);

  /// Splices a stage in front of the whole chain — how a ProtocolGuard
  /// becomes the first stage of an already-compiled pipeline.  Works both
  /// before and after SetSink.  Returns a borrowed pointer.
  Filter* InsertFront(std::unique_ptr<Filter> stage);

  size_t stage_count() const { return stages_.size(); }
  Filter* stage(size_t index) { return stages_[index].get(); }

  /// Terminates the chain.  Must be called exactly once, after all Add
  /// calls and before the first Push.
  void SetSink(EventSink* sink);

  /// When disabled, mutable regions arriving from the source are classified
  /// fixed at injection — the consumer ignores source updates (Section V).
  void set_accept_source_updates(bool accept) {
    accept_source_updates_ = accept;
  }

  /// Injects one source event into the first stage.
  void Push(Event event);
  /// Injects a run of source events with one virtual call per stage that
  /// supports batching (identical semantics to Push-ing each in order).
  void PushBatch(EventBatch batch);
  void PushAll(const EventVec& events);

 private:
  std::unique_ptr<PipelineContext> context_;
  std::vector<std::unique_ptr<Filter>> stages_;
  EventSink* sink_ = nullptr;
  bool wired_ = false;
  bool accept_source_updates_ = true;
};

}  // namespace xflux

#endif  // XFLUX_CORE_PIPELINE_H_
