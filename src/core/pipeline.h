// Push-based pipeline plumbing (paper Section II).
//
// A query compiles into a chain of Filters sharing one PipelineContext
// (id allocator, fix registry, lineage registry, metrics).  Events are
// pushed through the chain by direct dispatch — the paper's "event
// handling" processing method — and end at an arbitrary EventSink, usually
// the result display.

#ifndef XFLUX_CORE_PIPELINE_H_
#define XFLUX_CORE_PIPELINE_H_

#include <cassert>
#include <memory>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "core/fix_registry.h"
#include "core/stream_registry.h"
#include "util/metrics.h"

namespace xflux {

/// Shared services for all stages of one pipeline.
class PipelineContext {
 public:
  /// `first_dynamic_id` must be above every stream/region id the source
  /// uses; the default leaves the whole low range to sources.
  explicit PipelineContext(StreamId first_dynamic_id = 1 << 20)
      : next_id_(first_dynamic_id) {}

  /// Allocates a fresh region / substream id ("a new id that has not been
  /// used before").
  StreamId NewStreamId() { return next_id_++; }

  Metrics* metrics() { return &metrics_; }
  FixRegistry* fix() { return &fix_; }
  StreamRegistry* streams() { return &streams_; }

 private:
  StreamId next_id_;
  Metrics metrics_;
  FixRegistry fix_;
  StreamRegistry streams_;
};

/// A pipeline stage: consumes events via Accept, produces via Emit.
class Filter : public EventSink {
 public:
  explicit Filter(PipelineContext* context) : context_(context) {}

  /// Wires the downstream consumer; must be set before the first event.
  void SetNext(EventSink* next) { next_ = next; }

  void Accept(Event event) final {
    // Idempotent global bookkeeping: every stage learns region lineage and
    // mutability as the event passes.
    context_->fix()->OnEvent(event);
    context_->streams()->OnEvent(event);
    context_->metrics()->CountTransformerCall();
    Dispatch(std::move(event));
  }

 protected:
  /// Stage logic: consume one event, call Emit zero or more times.
  virtual void Dispatch(Event event) = 0;

  /// Pushes one event downstream.
  void Emit(Event event) {
    assert(next_ != nullptr && "pipeline stage has no downstream sink");
    context_->metrics()->CountEventEmitted();
    // Generated events must be visible to the shared registries even before
    // the next stage runs (the next stage may be the display).
    context_->fix()->OnEvent(event);
    context_->streams()->OnEvent(event);
    next_->Accept(std::move(event));
  }

  PipelineContext* context() { return context_; }

 private:
  PipelineContext* context_;
  EventSink* next_ = nullptr;
};

/// Owns a chain of filters plus the context, and feeds source events in.
class Pipeline {
 public:
  Pipeline() : context_(std::make_unique<PipelineContext>()) {}
  explicit Pipeline(StreamId first_dynamic_id)
      : context_(std::make_unique<PipelineContext>(first_dynamic_id)) {}

  PipelineContext* context() { return context_.get(); }

  /// Appends a stage; stages are chained in insertion order.
  /// Returns a borrowed pointer to the added stage.
  Filter* Add(std::unique_ptr<Filter> stage);

  /// Terminates the chain.  Must be called exactly once, after all Add
  /// calls and before the first Push.
  void SetSink(EventSink* sink);

  /// When disabled, mutable regions arriving from the source are classified
  /// fixed at injection — the consumer ignores source updates (Section V).
  void set_accept_source_updates(bool accept) {
    accept_source_updates_ = accept;
  }

  /// Injects one source event into the first stage.
  void Push(Event event);
  void PushAll(const EventVec& events);

 private:
  std::unique_ptr<PipelineContext> context_;
  std::vector<std::unique_ptr<Filter>> stages_;
  EventSink* sink_ = nullptr;
  bool wired_ = false;
  bool accept_source_updates_ = true;
};

}  // namespace xflux

#endif  // XFLUX_CORE_PIPELINE_H_
