// The XML update-stream event vocabulary (paper Sections II and III).
//
// A stream is a sequence of Event values.  "Simple" events tokenize XML
// (start/end stream, start/end tuple, start/end element, character data);
// "update" events bracket regions that retroactively modify parts of the
// stream that have already passed through (mutable regions, replacements,
// insert-before/after, plus freeze/hide/show control events).
//
// Every event carries the number of the virtual substream it belongs to
// (`id`); update brackets additionally carry the id of the region they
// introduce (`uid`).  Multiple virtual substreams interleave inside the one
// global stream that flows through a pipeline.
//
// The representation is compact by design (see DESIGN.md): element tags
// are interned Symbols (integer compare in the path steps), character data
// is a refcounted TextRef (copying an event through state maps and region
// documents never allocates), and the whole struct is 32 bytes.

#ifndef XFLUX_CORE_EVENT_H_
#define XFLUX_CORE_EVENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/symbol_table.h"
#include "util/text_ref.h"

namespace xflux {

/// Identifier of a virtual substream / update region inside the global
/// stream.  Ids are allocated by the pipeline context and never reused.
using StreamId = uint32_t;

/// Identity of an XML element node, assigned at the stream source.  Backward
/// axes (Section VI-E) join a cloned stream against the main stream on OID
/// equality.
using Oid = uint64_t;

/// All event forms of Sections II (simple) and III (updates).
enum class EventKind : uint8_t {
  // --- simple stream events (Section II) ---
  kStartStream,   // sS(id)
  kEndStream,     // eS(id)
  kStartTuple,    // sT(id)
  kEndTuple,      // eT(id)
  kStartElement,  // sE(id, tag)
  kEndElement,    // eE(id, tag)
  kCharacters,    // cD(id, text)
  // --- update events (Section III) ---
  kStartMutable,       // sM(id, uid)
  kEndMutable,         // eM(id, uid)
  kStartReplace,       // sR(id, uid)
  kEndReplace,         // eR(id, uid)
  kStartInsertBefore,  // sB(id, uid)
  kEndInsertBefore,    // eB(id, uid)
  kStartInsertAfter,   // sA(id, uid)
  kEndInsertAfter,     // eA(id, uid)
  kFreeze,             // freeze(id): close region to further updates
  kHide,               // hide(id): temporarily remove region content
  kShow,               // show(id): restore hidden content
};

/// Returns the paper's two-letter abbreviation for an event kind ("sE",
/// "cD", "sM", ...).
const char* EventKindName(EventKind kind);

/// One token of an XML update stream.
///
/// Field use by kind:
///  - kStartElement / kEndElement: `tag` is the interned tag, `oid` the
///    node id.  Attributes are tokenized as child elements whose tag
///    spelling starts with '@'.
///  - kCharacters: `text` is the (shared, immutable) character data.
///  - update brackets sU/eU: `id` is the target region, `uid` the new one.
///  - kFreeze / kHide / kShow: `id` is the region acted upon.
struct Event {
  EventKind kind = EventKind::kStartStream;
  StreamId id = 0;
  StreamId uid = 0;
  Symbol tag;    // sE/eE only
  Oid oid = 0;
  TextRef text;  // cD only

  /// The resolved tag spelling (sE/eE); "" for other kinds.
  std::string_view tag_name() const { return TagSpelling(tag); }
  /// True for sE/eE whose tag spelling starts with '@' (an attribute
  /// tokenized as a child element).
  bool HasAttributeTag() const {
    return SymbolTable::Global().IsAttribute(tag);
  }
  /// The character data (cD); "" for other kinds.
  std::string_view chars() const { return text.view(); }

  // -- factories for simple events --
  static Event StartStream(StreamId id) { return Plain(EventKind::kStartStream, id); }
  static Event EndStream(StreamId id) { return Plain(EventKind::kEndStream, id); }
  static Event StartTuple(StreamId id) { return Plain(EventKind::kStartTuple, id); }
  static Event EndTuple(StreamId id) { return Plain(EventKind::kEndTuple, id); }
  static Event StartElement(StreamId id, Symbol tag, Oid oid = 0) {
    Event e = Plain(EventKind::kStartElement, id);
    e.tag = tag;
    e.oid = oid;
    return e;
  }
  static Event StartElement(StreamId id, std::string_view tag, Oid oid = 0) {
    return StartElement(id, InternTag(tag), oid);
  }
  static Event EndElement(StreamId id, Symbol tag, Oid oid = 0) {
    Event e = Plain(EventKind::kEndElement, id);
    e.tag = tag;
    e.oid = oid;
    return e;
  }
  static Event EndElement(StreamId id, std::string_view tag, Oid oid = 0) {
    return EndElement(id, InternTag(tag), oid);
  }
  static Event Characters(StreamId id, TextRef text) {
    Event e = Plain(EventKind::kCharacters, id);
    e.text = std::move(text);
    return e;
  }
  static Event Characters(StreamId id, std::string_view text) {
    return Characters(id, TextRef::Copy(text));
  }

  // -- factories for update events --
  static Event StartMutable(StreamId id, StreamId uid) { return Plain(EventKind::kStartMutable, id, uid); }
  static Event EndMutable(StreamId id, StreamId uid) { return Plain(EventKind::kEndMutable, id, uid); }
  static Event StartReplace(StreamId id, StreamId uid) { return Plain(EventKind::kStartReplace, id, uid); }
  static Event EndReplace(StreamId id, StreamId uid) { return Plain(EventKind::kEndReplace, id, uid); }
  static Event StartInsertBefore(StreamId id, StreamId uid) { return Plain(EventKind::kStartInsertBefore, id, uid); }
  static Event EndInsertBefore(StreamId id, StreamId uid) { return Plain(EventKind::kEndInsertBefore, id, uid); }
  static Event StartInsertAfter(StreamId id, StreamId uid) { return Plain(EventKind::kStartInsertAfter, id, uid); }
  static Event EndInsertAfter(StreamId id, StreamId uid) { return Plain(EventKind::kEndInsertAfter, id, uid); }
  static Event Freeze(StreamId id) { return Plain(EventKind::kFreeze, id); }
  static Event Hide(StreamId id) { return Plain(EventKind::kHide, id); }
  static Event Show(StreamId id) { return Plain(EventKind::kShow, id); }

  /// True for the seven simple stream event kinds of Section II.
  bool IsSimple() const { return kind <= EventKind::kCharacters; }
  /// True for any update event (brackets plus freeze/hide/show).
  bool IsUpdate() const { return !IsSimple(); }
  /// True for sM/sR/sB/sA.
  bool IsUpdateStart() const {
    return kind == EventKind::kStartMutable || kind == EventKind::kStartReplace ||
           kind == EventKind::kStartInsertBefore ||
           kind == EventKind::kStartInsertAfter;
  }
  /// True for eM/eR/eB/eA.
  bool IsUpdateEnd() const {
    return kind == EventKind::kEndMutable || kind == EventKind::kEndReplace ||
           kind == EventKind::kEndInsertBefore ||
           kind == EventKind::kEndInsertAfter;
  }

  /// Paper-style rendering with resolved tag names, e.g. `sE(0,"book")`,
  /// `sR(1,2)`.
  std::string ToString() const;

  /// Full-value equality, `oid` included: backward-axis joins key on node
  /// identity, so two events that differ only in oid are NOT the same
  /// event.  Character data compares by content (shared or not).  Tests
  /// comparing structure only should StripOids first.
  friend bool operator==(const Event& a, const Event& b) {
    return a.kind == b.kind && a.id == b.id && a.uid == b.uid &&
           a.oid == b.oid && a.tag == b.tag && a.text == b.text;
  }

 private:
  static Event Plain(EventKind kind, StreamId id, StreamId uid = 0) {
    Event e;
    e.kind = kind;
    e.id = id;
    e.uid = uid;
    return e;
  }
};

static_assert(sizeof(Event) <= 32,
              "Event must stay compact: tags are Symbols, text is a "
              "TextRef, no std::string members");

/// Returns the matching end-bracket kind for an update start (sM -> eM etc).
/// Traps (XFLUX_CHECK) when `start` is not an update start; hostile-input
/// paths must use TryMatchingUpdateEnd instead.
EventKind MatchingUpdateEnd(EventKind start);

/// Like MatchingUpdateEnd but total: returns false (leaving `end` untouched)
/// when `start` is not an update start.  This is the form protocol checkers
/// use on untrusted streams.
bool TryMatchingUpdateEnd(EventKind start, EventKind* end);

/// An in-memory event sequence; pipelines also stream events one at a time.
using EventVec = std::vector<Event>;

/// One parser/generator emission unit: a contiguous run of events handed
/// down the pipeline with a single virtual call (see EventSink::AcceptBatch).
using EventBatch = std::vector<Event>;

/// Renders a whole sequence as `[ sE(0,"a"), ... ]` (tests, debugging).
std::string ToString(const EventVec& events);

inline std::ostream& operator<<(std::ostream& os, const Event& e) {
  return os << e.ToString();
}

}  // namespace xflux

#endif  // XFLUX_CORE_EVENT_H_
