// The XML update-stream event vocabulary (paper Sections II and III).
//
// A stream is a sequence of Event values.  "Simple" events tokenize XML
// (start/end stream, start/end tuple, start/end element, character data);
// "update" events bracket regions that retroactively modify parts of the
// stream that have already passed through (mutable regions, replacements,
// insert-before/after, plus freeze/hide/show control events).
//
// Every event carries the number of the virtual substream it belongs to
// (`id`); update brackets additionally carry the id of the region they
// introduce (`uid`).  Multiple virtual substreams interleave inside the one
// global stream that flows through a pipeline.

#ifndef XFLUX_CORE_EVENT_H_
#define XFLUX_CORE_EVENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace xflux {

/// Identifier of a virtual substream / update region inside the global
/// stream.  Ids are allocated by the pipeline context and never reused.
using StreamId = uint32_t;

/// Identity of an XML element node, assigned at the stream source.  Backward
/// axes (Section VI-E) join a cloned stream against the main stream on OID
/// equality.
using Oid = uint64_t;

/// All event forms of Sections II (simple) and III (updates).
enum class EventKind : uint8_t {
  // --- simple stream events (Section II) ---
  kStartStream,   // sS(id)
  kEndStream,     // eS(id)
  kStartTuple,    // sT(id)
  kEndTuple,      // eT(id)
  kStartElement,  // sE(id, tag)
  kEndElement,    // eE(id, tag)
  kCharacters,    // cD(id, text)
  // --- update events (Section III) ---
  kStartMutable,       // sM(id, uid)
  kEndMutable,         // eM(id, uid)
  kStartReplace,       // sR(id, uid)
  kEndReplace,         // eR(id, uid)
  kStartInsertBefore,  // sB(id, uid)
  kEndInsertBefore,    // eB(id, uid)
  kStartInsertAfter,   // sA(id, uid)
  kEndInsertAfter,     // eA(id, uid)
  kFreeze,             // freeze(id): close region to further updates
  kHide,               // hide(id): temporarily remove region content
  kShow,               // show(id): restore hidden content
};

/// Returns the paper's two-letter abbreviation for an event kind ("sE",
/// "cD", "sM", ...).
const char* EventKindName(EventKind kind);

/// One token of an XML update stream.
///
/// Field use by kind:
///  - kStartElement / kEndElement: `text` is the tag, `oid` the node id.
///    Attributes are tokenized as child elements whose tag starts with '@'.
///  - kCharacters: `text` is the character data.
///  - update brackets sU/eU: `id` is the target region, `uid` the new one.
///  - kFreeze / kHide / kShow: `id` is the region acted upon.
struct Event {
  EventKind kind = EventKind::kStartStream;
  StreamId id = 0;
  StreamId uid = 0;
  Oid oid = 0;
  std::string text;

  // -- factories for simple events --
  static Event StartStream(StreamId id) { return {EventKind::kStartStream, id, 0, 0, {}}; }
  static Event EndStream(StreamId id) { return {EventKind::kEndStream, id, 0, 0, {}}; }
  static Event StartTuple(StreamId id) { return {EventKind::kStartTuple, id, 0, 0, {}}; }
  static Event EndTuple(StreamId id) { return {EventKind::kEndTuple, id, 0, 0, {}}; }
  static Event StartElement(StreamId id, std::string tag, Oid oid = 0) {
    return {EventKind::kStartElement, id, 0, oid, std::move(tag)};
  }
  static Event EndElement(StreamId id, std::string tag, Oid oid = 0) {
    return {EventKind::kEndElement, id, 0, oid, std::move(tag)};
  }
  static Event Characters(StreamId id, std::string text) {
    return {EventKind::kCharacters, id, 0, 0, std::move(text)};
  }

  // -- factories for update events --
  static Event StartMutable(StreamId id, StreamId uid) { return {EventKind::kStartMutable, id, uid, 0, {}}; }
  static Event EndMutable(StreamId id, StreamId uid) { return {EventKind::kEndMutable, id, uid, 0, {}}; }
  static Event StartReplace(StreamId id, StreamId uid) { return {EventKind::kStartReplace, id, uid, 0, {}}; }
  static Event EndReplace(StreamId id, StreamId uid) { return {EventKind::kEndReplace, id, uid, 0, {}}; }
  static Event StartInsertBefore(StreamId id, StreamId uid) { return {EventKind::kStartInsertBefore, id, uid, 0, {}}; }
  static Event EndInsertBefore(StreamId id, StreamId uid) { return {EventKind::kEndInsertBefore, id, uid, 0, {}}; }
  static Event StartInsertAfter(StreamId id, StreamId uid) { return {EventKind::kStartInsertAfter, id, uid, 0, {}}; }
  static Event EndInsertAfter(StreamId id, StreamId uid) { return {EventKind::kEndInsertAfter, id, uid, 0, {}}; }
  static Event Freeze(StreamId id) { return {EventKind::kFreeze, id, 0, 0, {}}; }
  static Event Hide(StreamId id) { return {EventKind::kHide, id, 0, 0, {}}; }
  static Event Show(StreamId id) { return {EventKind::kShow, id, 0, 0, {}}; }

  /// True for the seven simple stream event kinds of Section II.
  bool IsSimple() const { return kind <= EventKind::kCharacters; }
  /// True for any update event (brackets plus freeze/hide/show).
  bool IsUpdate() const { return !IsSimple(); }
  /// True for sM/sR/sB/sA.
  bool IsUpdateStart() const {
    return kind == EventKind::kStartMutable || kind == EventKind::kStartReplace ||
           kind == EventKind::kStartInsertBefore ||
           kind == EventKind::kStartInsertAfter;
  }
  /// True for eM/eR/eB/eA.
  bool IsUpdateEnd() const {
    return kind == EventKind::kEndMutable || kind == EventKind::kEndReplace ||
           kind == EventKind::kEndInsertBefore ||
           kind == EventKind::kEndInsertAfter;
  }

  /// Paper-style rendering, e.g. `sE(0,"book")`, `sR(1,2)`.
  std::string ToString() const;

  /// Full-value equality, `oid` included: backward-axis joins key on node
  /// identity, so two events that differ only in oid are NOT the same
  /// event.  Tests comparing structure only should StripOids first.
  friend bool operator==(const Event& a, const Event& b) {
    return a.kind == b.kind && a.id == b.id && a.uid == b.uid &&
           a.oid == b.oid && a.text == b.text;
  }
};

/// Returns the matching end-bracket kind for an update start (sM -> eM etc).
EventKind MatchingUpdateEnd(EventKind start);

/// An in-memory event sequence; pipelines also stream events one at a time.
using EventVec = std::vector<Event>;

/// Renders a whole sequence as `[ sE(0,"a"), ... ]` (tests, debugging).
std::string ToString(const EventVec& events);

inline std::ostream& operator<<(std::ostream& os, const Event& e) {
  return os << e.ToString();
}

}  // namespace xflux

#endif  // XFLUX_CORE_EVENT_H_
