#include "core/transform_stage.h"

#include <algorithm>
#include <cassert>

namespace xflux {

namespace {

void RemoveFrom(std::map<OrderKey, std::vector<StreamId>>* index,
                const OrderKey& key, StreamId id) {
  auto it = index->find(key);
  if (it == index->end()) return;
  auto& ids = it->second;
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  if (ids.empty()) index->erase(it);
}

}  // namespace

TransformStage::TransformStage(PipelineContext* context,
                               std::unique_ptr<StateTransformer> transformer,
                               bool immune)
    : Filter(context), transformer_(std::move(transformer)), immune_(immune) {
  transformer_->BindStage(this->context());
  main_end_ = CowState::Adopt(transformer_->InitialState());
  // An immune stage neither reads region mutability nor tracks lineage of
  // its own; the shared registries stay current through the emitters.
  if (immune_) set_registry_passive(true);
}

bool TransformStage::Relevant(StreamId id) {
  return transformer_->Consumes(context()->streams()->RootOf(id));
}

TransformStage::CowState& TransformStage::CurHandle(StreamId id) {
  auto ait = region_alias_.find(id);
  if (ait != region_alias_.end()) id = ait->second;
  // Region content only arrives while its bracket is open; the same id
  // outside any bracket is base-stream data (stream ids double as region
  // ids in the concatenation protocol).
  auto it = states_.find(id);
  if (it != states_.end() && !it->second.closed) return it->second.end;
  return main_end_;
}

void TransformStage::SetCurState(StreamId id, CowState state) {
  CurHandle(id) = std::move(state);
}

OperatorState* TransformStage::Mut(CowState& handle) {
  bool cloned = false;
  OperatorState* state = handle.Mutable(&cloned);
  if (cloned) {
    context()->metrics()->OnStateClone();
    if (StageStats* s = stats()) ++s->state_clones;
  }
  return state;
}

TransformStage::CowState TransformStage::Share(const CowState& handle) {
  context()->metrics()->OnStateShare();
  if (StageStats* s = stats()) ++s->state_shares;
  return handle.Snapshot();
}

OrderKey TransformStage::NextGlobalKey() {
  OrderKey key = OrderKey::Between(global_cursor_, NextKeyAfter(global_cursor_));
  global_cursor_ = key;
  return key;
}

OrderKey TransformStage::OrderForMutable(StreamId target, bool* positional,
                                         OrderKey* span_end) {
  auto it = states_.find(target);
  if (it != states_.end() && !it->second.closed) {
    RegionState& parent = it->second;
    OrderKey key =
        OrderKey::Between(parent.content_cursor,
                          NextKeyAfter(parent.content_cursor));
    parent.content_cursor = key;
    *positional = true;
    *span_end = parent.span_end;
    return key;
  }
  *positional = false;
  *span_end = OrderKey::Max();
  return NextGlobalKey();
}

OrderKey TransformStage::NextKeyAfter(const OrderKey& key) const {
  auto it = all_keys_.upper_bound(key);
  return it == all_keys_.end() ? OrderKey::Max() : *it;
}

OrderKey TransformStage::PrevKeyBefore(const OrderKey& key) const {
  auto it = all_keys_.lower_bound(key);
  if (it == all_keys_.begin()) return OrderKey::Min();
  return *std::prev(it);
}

TransformStage::RegionState* TransformStage::CreateRegion(
    StreamId uid, CowState start, CowState end, OrderKey order, bool output) {
  Evict(uid);  // id reuse rebinds to the newest instance
  RegionState rs;
  rs.start = std::move(start);
  rs.end = std::move(end);
  rs.order = order;
  rs.content_cursor = order;
  rs.output = output;
  auto [it, inserted] = states_.emplace(uid, std::move(rs));
  assert(inserted);
  (void)inserted;
  starts_by_key_[order].push_back(uid);
  all_keys_.insert(order);
  open_regions_.insert(uid);
  context()->metrics()->OnStateCreated();
  if (StageStats* s = stats()) s->OnStateCreated();
  return &it->second;
}

void TransformStage::CloseRegion(StreamId uid, RegionState* rs) {
  rs->closed = true;
  // A retro-located region closes within its span (just after its last
  // content position); a live one closes at the stream head.
  rs->end_order =
      rs->positional
          ? OrderKey::Between(rs->content_cursor,
                              NextKeyAfter(rs->content_cursor))
          : NextGlobalKey();
  ends_by_key_[rs->end_order].push_back(uid);
  all_keys_.insert(rs->end_order);
  open_regions_.erase(uid);
}

void TransformStage::Evict(StreamId id) {
  auto it = states_.find(id);
  if (it == states_.end()) return;
  RegionState& rs = it->second;
  RemoveFrom(&starts_by_key_, rs.order, id);
  if (rs.closed) RemoveFrom(&ends_by_key_, rs.end_order, id);
  open_regions_.erase(id);
  // all_keys_ entries may be shared between regions; stale keys only make
  // Between intervals tighter, so they are left in place.
  states_.erase(it);
  // Aliases resolve to the evicted region; without the target they would
  // dangle forever (lookups fall back to the live tail either way, which
  // is exactly what a missing alias entry does).
  for (auto ait = region_alias_.begin(); ait != region_alias_.end();) {
    ait = ait->second == id ? region_alias_.erase(ait) : std::next(ait);
  }
  context()->metrics()->OnStateDropped();
  if (StageStats* s = stats()) s->OnStateDropped();
}

void TransformStage::Adj(const OrderKey& pivot, StreamId uid,
                         const OperatorState& s1, const OperatorState& s2) {
  context()->metrics()->CountAdjustCall();
  if (StageStats* s = stats()) ++s->adjust_calls;
  if (transformer_->IsInert()) return;
  using Target = StateTransformer::AdjustTarget;
  EventVec emitted;

  // If the update sits inside an open insert/replace span, its effect is
  // confined to that span: the region's pending delta fold carries it to
  // everything outside (including the live tail) once the span closes.
  OrderKey bound = OrderKey::Max();
  bool inside_pending_fold = false;
  for (StreamId r : open_regions_) {
    if (r == uid) continue;
    RegionState& rs = states_.at(r);
    if (rs.delta_fold && rs.order <= pivot && pivot < rs.span_end &&
        (!inside_pending_fold || rs.span_end < bound)) {
      inside_pending_fold = true;
      bound = rs.span_end;  // innermost containing span wins
    }
  }

  // Start snapshots positioned after the update (within the bound).
  for (auto it = starts_by_key_.upper_bound(pivot);
       it != starts_by_key_.end() && it->first < bound; ++it) {
    for (StreamId r : it->second) {
      if (r == uid) continue;
      RegionState& rs = states_.at(r);
      transformer_->Adjust(Mut(rs.start), s1, s2,
                           Target::kStartSnapshot, r, &emitted);
    }
  }
  // End snapshots of closed regions positioned after the update.
  for (auto it = ends_by_key_.upper_bound(pivot);
       it != ends_by_key_.end() && it->first < bound; ++it) {
    for (StreamId r : it->second) {
      if (r == uid) continue;
      RegionState& rs = states_.at(r);
      transformer_->Adjust(Mut(rs.end), s1, s2, Target::kEndSnapshot, r,
                           &emitted);
      if (rs.shadow) {
        transformer_->Adjust(Mut(rs.shadow), s1, s2,
                             Target::kStartSnapshot, r, &emitted);
      }
    }
  }
  // Open regions' end states sit at the head of their content span; they
  // are affected by anything positioned before that span ends (and inside
  // the bound).
  for (StreamId r : open_regions_) {
    if (r == uid) continue;
    RegionState& rs = states_.at(r);
    if (pivot < rs.span_end && rs.span_end <= bound) {
      transformer_->Adjust(Mut(rs.end), s1, s2, Target::kEndSnapshot, r,
                           &emitted);
    }
  }
  if (!inside_pending_fold) {
    // If the tail still shares its object with one of the pivot handles
    // (s1/s2), Mut clones first, so the pivot stays valid for the write.
    transformer_->Adjust(Mut(main_end_), s1, s2, Target::kLiveTail, 0,
                         &emitted);
  }
  for (Event& e : emitted) EmitFromOperator(std::move(e));
}

void TransformStage::OnUpdateStart(const Event& e) {
  if (dropping_.count(e.id) > 0) {
    dropping_.insert(e.uid);
    return;
  }
  if (!Relevant(e.uid)) {
    Emit(e);
    return;
  }
  // A clone-parallel of a region this stage already tracks shares its
  // state: both views of the same content feed one copy.
  StreamId partner = context()->streams()->PartnerOf(e.uid);
  if (partner != 0 && Relevant(partner) && states_.count(partner) > 0) {
    region_alias_[e.uid] = partner;
    Emit(e);
    return;
  }
  if (e.kind == EventKind::kStartMutable) {
    // sM: start[uid] <- end[id], end[uid] <- end[id], positioned at the
    // target stream's current position.  Both snapshots share the target's
    // physical state until one of the three diverges.
    CowState cur = Share(CurHandle(e.id));
    CowState cur2 = Share(cur);  // before the call: argument order is unspecified
    bool positional = false;
    OrderKey span_end = OrderKey::Max();
    OrderKey order = OrderForMutable(e.id, &positional, &span_end);
    RegionState* created =
        CreateRegion(e.uid, std::move(cur2), std::move(cur), order,
                     /*output=*/false);
    created->positional = positional;
    created->span_end = span_end;
    Emit(e);
    return;
  }
  // sR / sB / sA: an update addressed to region e.id.
  auto it = states_.find(e.id);
  if (it == states_.end() || context()->fix()->IsFixed(e.id)) {
    // The target is closed to updates (or ignored): drop the whole update.
    dropping_.insert(e.uid);
    return;
  }
  RegionState& target = it->second;
  RegionState* created = nullptr;
  switch (e.kind) {
    case EventKind::kStartReplace: {
      // start[uid] <- start[id]; same position as the replaced content.
      created = CreateRegion(e.uid, Share(target.start), Share(target.start),
                             target.order,
                             /*output=*/false);
      created->span_end = NextKeyAfter(created->order);
      break;
    }
    case EventKind::kStartInsertBefore: {
      created = CreateRegion(
          e.uid, Share(target.start), Share(target.start),
          OrderKey::Between(PrevKeyBefore(target.order), target.order),
          /*output=*/false);
      created->span_end = target.order;
      break;
    }
    case EventKind::kStartInsertAfter: {
      // start[uid] <- end[id]; positioned just after the target.
      OrderKey hi = NextKeyAfter(target.order);
      created = CreateRegion(e.uid, Share(target.end), Share(target.end),
                             OrderKey::Between(target.order, hi),
                             /*output=*/false);
      created->span_end = hi;
      break;
    }
    default:
      // Unreachable through Dispatch's routing, but a corrupted kind byte
      // must not null-deref `created` in Release builds.
      context()->ReportError(Status::Internal(
          "update-start dispatch on non-start event " + e.ToString()));
      return;
  }
  created->delta_fold = true;
  created->positional = true;
  Emit(e);
}

void TransformStage::OnUpdateEnd(const Event& e) {
  if (dropping_.erase(e.uid) > 0) return;
  if (!Relevant(e.uid)) {
    Emit(e);
    return;
  }
  if (region_alias_.count(e.uid) > 0) {
    // The original's bracket does the folding; the parallel just closes.
    Emit(e);
    return;
  }
  auto it = states_.find(e.uid);
  if (it == states_.end()) {
    Emit(e);  // bracket for a region we never tracked (defensive)
    return;
  }
  RegionState& rs = it->second;
  switch (e.kind) {
    case EventKind::kEndMutable:
      // Inline data: the enclosing stream's state advances through it.
      CloseRegion(e.uid, &rs);
      if (rs.saw_uid_content) {
        // Content arrived under the region's own id and advanced end[uid];
        // fold it back into the enclosing stream.
        SetCurState(e.id, Share(rs.end));
      } else {
        // Pass-through style: the content carried the *target* id and
        // advanced the enclosing state directly; snapshot it as this
        // region's end so later hide/replace adjustments see the content's
        // effect.
        rs.end = Share(CurHandle(e.id));
      }
      break;
    case EventKind::kEndReplace: {
      // Old content's effect (end[id]) is retracted, new content's
      // (end[uid]) applied, for everything positioned later.
      CloseRegion(e.uid, &rs);
      auto tit = states_.find(e.id);
      if (tit == states_.end()) {
        // A hostile stream can freeze the replacement's target mid-bracket,
        // evicting the state this fold needs.  Degrade instead of reading a
        // dead iterator: forward the closed bracket without the retroactive
        // adjustment so the pipeline (and any guard recovery) keeps running.
        context()->metrics()->CountStageRecovery();
        break;
      }
      // The snapshot keeps the pre-replace target state alive through the
      // walk even though the target handle is reassigned right after.
      CowState old_end = Share(tit->second.end);
      Adj(rs.order, e.uid, *old_end, *states_.at(e.uid).end);
      states_.at(e.id).end = Share(states_.at(e.uid).end);
      break;
    }
    case EventKind::kEndInsertBefore:
    case EventKind::kEndInsertAfter:
      // Inserted content adds its whole effect to everything later.
      CloseRegion(e.uid, &rs);
      Adj(rs.order, e.uid, *states_.at(e.uid).start, *states_.at(e.uid).end);
      break;
    default:
      context()->ReportError(Status::Internal(
          "update-end dispatch on non-end event " + e.ToString()));
      return;
  }
  Emit(e);
  if (context()->fix()->IsFixed(e.uid)) {
    // No retroactive change can ever arrive (refused updates or immutable
    // operator structure): the states are dead weight (Section V).
    Evict(e.uid);
    Emit(Event::Freeze(e.uid));
  }
}

void TransformStage::OnHide(const Event& e) {
  if (dropping_.count(e.id) > 0) return;
  if (!Relevant(e.id)) {
    Emit(e);
    return;
  }
  if (region_alias_.count(e.id) > 0) {
    Emit(e);  // the original's hide carries the adjustment
    return;
  }
  auto it = states_.find(e.id);
  if (it == states_.end()) {
    if (!context()->fix()->IsFixed(e.id)) Emit(e);
    return;
  }
  RegionState& rs = it->second;
  Adj(rs.order, e.id, *rs.end, *rs.start);
  rs.shadow = std::move(rs.end);
  rs.end = Share(rs.start);
  Emit(e);
}

void TransformStage::OnShow(const Event& e) {
  if (dropping_.count(e.id) > 0) return;
  if (!Relevant(e.id)) {
    Emit(e);
    return;
  }
  if (region_alias_.count(e.id) > 0) {
    Emit(e);
    return;
  }
  auto it = states_.find(e.id);
  if (it == states_.end()) {
    if (!context()->fix()->IsFixed(e.id)) Emit(e);
    return;
  }
  RegionState& rs = it->second;
  if (!rs.shadow) {
    Emit(e);  // show without a preceding hide: nothing to restore
    return;
  }
  Adj(rs.order, e.id, *rs.end, *rs.shadow);
  rs.end = std::move(rs.shadow);
  rs.shadow = Share(rs.end);
  Emit(e);
}

void TransformStage::OnFreeze(const Event& e) {
  if (dropping_.count(e.id) > 0) return;
  if (region_alias_.erase(e.id) > 0) {
    Emit(e);
    return;
  }
  if (Relevant(e.id)) Evict(e.id);
  Emit(e);
}

void TransformStage::EmitFromOperator(Event e) {
  if (!transformer_->IsInert()) {
    // Snapshot the regions the operator creates on its output, so that
    // retroactive updates can be delivered to decisions made inside them
    // (e.g. a predicate's per-element show/hide).
    switch (e.kind) {
      case EventKind::kStartMutable:
        if (states_.count(e.uid) == 0) {
          CowState cur = Share(CurHandle(e.id));
          CowState cur2 = Share(cur);
          bool positional = false;
          OrderKey span_end = OrderKey::Max();
          OrderKey order = OrderForMutable(e.id, &positional, &span_end);
          RegionState* created = CreateRegion(e.uid, std::move(cur2),
                                              std::move(cur), order,
                                              /*output=*/true);
          created->positional = positional;
          created->span_end = span_end;
        }
        break;
      case EventKind::kEndMutable: {
        auto it = states_.find(e.uid);
        if (it != states_.end() && it->second.output && !it->second.closed) {
          it->second.end = Share(CurHandle(e.id));
          CloseRegion(e.uid, &it->second);
        }
        break;
      }
      case EventKind::kFreeze:
        Evict(e.id);
        break;
      default:
        break;
    }
  }
  Emit(std::move(e));
}

void TransformStage::Dispatch(Event e) {
  if (immune_) {
    switch (e.kind) {
      case EventKind::kStartMutable:
      case EventKind::kStartReplace:
      case EventKind::kStartInsertBefore:
      case EventKind::kStartInsertAfter:
      case EventKind::kEndMutable:
      case EventKind::kEndReplace:
      case EventKind::kEndInsertBefore:
      case EventKind::kEndInsertAfter:
      case EventKind::kHide:
      case EventKind::kShow:
      case EventKind::kFreeze:
        // Update-independent: region machinery passes through untouched.
        Emit(std::move(e));
        return;
      default:
        break;
    }
    StreamId root = context()->streams()->RootOf(e.id);
    if (!transformer_->Consumes(root)) {
      Emit(std::move(e));
      return;
    }
    EventVec out;
    transformer_->Process(e, root, Mut(main_end_), &out);
    for (Event& produced : out) Emit(std::move(produced));
    return;
  }
  switch (e.kind) {
    case EventKind::kStartMutable:
    case EventKind::kStartReplace:
    case EventKind::kStartInsertBefore:
    case EventKind::kStartInsertAfter:
      OnUpdateStart(e);
      return;
    case EventKind::kEndMutable:
    case EventKind::kEndReplace:
    case EventKind::kEndInsertBefore:
    case EventKind::kEndInsertAfter:
      OnUpdateEnd(e);
      return;
    case EventKind::kHide:
      OnHide(e);
      return;
    case EventKind::kShow:
      OnShow(e);
      return;
    case EventKind::kFreeze:
      OnFreeze(e);
      return;
    default:
      break;
  }
  // Simple event.
  if (dropping_.count(e.id) > 0) return;
  StreamId root = context()->streams()->RootOf(e.id);
  if (!transformer_->Consumes(root)) {
    Emit(std::move(e));
    return;
  }
  auto rit = states_.find(e.id);
  if (rit != states_.end()) rit->second.saw_uid_content = true;
  EventVec out;
  transformer_->Process(e, root, Mut(CurHandle(e.id)), &out);
  for (Event& produced : out) EmitFromOperator(std::move(produced));
}

}  // namespace xflux
