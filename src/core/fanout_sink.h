// A branching EventSink: copies every event (or batch) to N downstream
// sinks, in registration order.
//
// This is the fan-out point of the QueryServer's shared prefix DAG: one
// prefix segment computes a sub-result once, and the fanout hands an
// identical copy to every consumer that registered for it — child prefix
// nodes deeper in the DAG and per-query suffix pipelines alike.
//
// Determinism: targets are visited strictly in AddTarget order for every
// event, so each target observes exactly the event sequence the producer
// emitted, and relative delivery order between targets is fixed at wiring
// time.  Since targets never feed back into the producer, fan-out
// introduces no ordering freedom at all — each downstream pipeline sees
// the same stream it would have seen wired alone behind the producer.

#ifndef XFLUX_CORE_FANOUT_SINK_H_
#define XFLUX_CORE_FANOUT_SINK_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"

namespace xflux {

/// Copies every accepted event to all registered targets (the last target
/// receives the original by move).  With no targets it discards.
class FanoutSink : public EventSink {
 public:
  /// Appends a consumer.  Wiring-time only: must not be called once events
  /// are flowing (the QueryServer freezes registration at the first push).
  void AddTarget(EventSink* target) { targets_.push_back(target); }

  size_t target_count() const { return targets_.size(); }

  void Accept(Event event) override {
    if (targets_.empty()) return;
    for (size_t i = 0; i + 1 < targets_.size(); ++i) {
      targets_[i]->Accept(event);
    }
    targets_.back()->Accept(std::move(event));
  }

  void AcceptBatch(EventBatch batch) override {
    if (targets_.empty()) return;
    for (size_t i = 0; i + 1 < targets_.size(); ++i) {
      targets_[i]->AcceptBatch(batch);
    }
    targets_.back()->AcceptBatch(std::move(batch));
  }

 private:
  std::vector<EventSink*> targets_;
};

}  // namespace xflux

#endif  // XFLUX_CORE_FANOUT_SINK_H_
