// Incremental document that applies update streams (paper Sections I, III).
//
// A RegionDocument consumes the global event stream one event at a time and
// maintains the *current* answer: the sequence of simple events that results
// from eagerly applying every update seen so far.  It is the engine behind
// both the result display (which renders the answer as text, Section IV's
// "final display of the query result") and the materializer used as the
// reference semantics in tests ("after the updates are applied, the result
// is equivalent to ...", Section III).
//
// Representation: an intrusive doubly-linked list of items carved out of a
// slab arena (util/slab_arena.h) — no per-item malloc, and slots freed by
// EraseRange are immediately reused by the replacement content.  Each
// update region is an *interval* delimited by two sentinel items.
// Replacement splices the new region between the target's sentinels (after
// discarding the old content); insert-before/-after splice immediately
// outside them; hide/show toggle a visibility flag; freeze makes a region
// unaddressable (and physically deletes it when it is hidden, the
// irrevocable cheap path of Section V).
//
// Incremental rendering: the document splits into a *stable prefix* —
// items no in-flight bracket or future update can still get in front of —
// and a *volatile tail*.  A renderer (core/result_display.h) consumes the
// stable prefix exactly once through SyncRender and recomputes only the
// tail per refresh, so append-only streams pay O(1) amortized per event.
// Restructuring that touches already-consumed items (an insert before a
// rendered position, erasing or re-veiling rendered content) invalidates
// the prefix; SyncRender then signals a restart and replays from the top.
// RenderEvents stays the full-walk oracle the incremental path is checked
// against.

#ifndef XFLUX_CORE_REGION_DOCUMENT_H_
#define XFLUX_CORE_REGION_DOCUMENT_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.h"
#include "util/metrics.h"
#include "util/slab_arena.h"
#include "util/status.h"

namespace xflux {

/// Options controlling how RenderEvents flattens the current answer.
struct RenderOptions {
  StreamId out_id = 0;       ///< stream id stamped on every rendered event
  bool keep_tuples = false;  ///< keep sT/eT markers instead of stripping them
};

/// See file comment.
class RegionDocument {
 public:
  /// `metrics`, when non-null, tracks the live region-registry size.
  /// In lenient mode (the result display), updates addressed to unknown
  /// regions are dropped instead of erroring: a region vanishes legally
  /// when irrevocably removed content (hidden + frozen) is reclaimed, and
  /// in-flight source updates to it are then simply irrelevant.
  explicit RegionDocument(Metrics* metrics = nullptr, bool lenient = false)
      : metrics_(metrics), lenient_(lenient) {
    end_.prev = &end_;
    end_.next = &end_;
  }

  ~RegionDocument();

  RegionDocument(const RegionDocument&) = delete;
  RegionDocument& operator=(const RegionDocument&) = delete;

  /// Applies one event.  Simple events append at the cursor of their
  /// region (or at the document tail); update events restructure the
  /// document as described in the file comment.
  Status Feed(const Event& e);

  /// Applies a whole sequence, stopping at the first error.
  Status FeedAll(const EventVec& events);

  /// Flattens the currently-visible content into a plain event sequence.
  EventVec RenderEvents(const RenderOptions& options = {}) const;

  /// Number of regions still addressable by future updates.
  size_t live_region_count() const { return active_.size(); }

  /// Total items held (content + sentinels): the document's buffering cost.
  size_t item_count() const { return item_arena_.live_nodes(); }

  /// Regions whose updates are currently being swallowed (lenient mode).
  size_t dropping_count() const { return dropping_.size(); }

  // -- slab occupancy (xflux_inspect, EXPERIMENTS.md) --

  /// Intervals alive (addressable or not — an unaddressable interval still
  /// holds its sentinels until its content is reclaimed).
  size_t live_interval_count() const { return interval_arena_.live_nodes(); }
  /// Item slots carved out of the slabs so far (high-water capacity).
  size_t arena_capacity_items() const { return item_arena_.capacity_nodes(); }
  /// Bytes resident in the item + interval slabs.
  size_t arena_bytes() const {
    return item_arena_.arena_bytes() + interval_arena_.arena_bytes();
  }
  /// Live fraction of the item slabs, in [0, 1].
  double arena_occupancy() const { return item_arena_.occupancy(); }

  // -- incremental rendering (single consumer; see file comment) --

  /// Bumped on every Feed that may have changed the rendered answer.  A
  /// renderer holding output for epoch() can skip its refresh entirely.
  uint64_t epoch() const { return epoch_; }

  /// Times SyncRender had to throw away the stable prefix and replay.
  uint64_t full_rescans() const { return full_rescans_; }

  /// Advances the stable prefix: emits every newly-stable visible event
  /// (same filtering as RenderEvents) through `emit`.  If restructuring
  /// invalidated the prefix, calls `on_restart()` first — the consumer
  /// drops its accumulated output — and replays from the document start.
  /// Logically const: only the renderer-side scan state mutates.
  template <typename OnRestart, typename Emit>
  void SyncRender(const RenderOptions& options, OnRestart&& on_restart,
                  Emit&& emit) const {
    const Item* end = &end_;
    bool restarted = false;
    if (structural_) {
      on_restart();
      ++full_rescans_;
      structural_ = false;
      last_rendered_ = nullptr;
      stable_skip_ = 0;
      restarted = true;
    }
    Item* cur = last_rendered_ != nullptr ? last_rendered_->next : end_.next;
    while (cur != end) {
      if (cur->type == Item::Type::kEnd &&
          cur->interval->pending_inserts > 0) {
        break;  // an open bracket can still insert here: tail starts
      }
      cur->rendered = true;
      EmitVisible(*cur, options, &stable_skip_, emit);
      last_rendered_ = cur;
      cur = cur->next;
    }
    if (restarted) {
      // The suffix may carry flags from before the restart; the exactness
      // of the rendered <=> in-stable-prefix invariant depends on clearing
      // them (it is what makes the cleanliness checks in Feed precise).
      for (Item* i = cur; i != end; i = i->next) i->rendered = false;
    }
  }

  /// True when items exist past the stable prefix (call after SyncRender).
  bool HasVolatileTail() const {
    Item* cur = last_rendered_ != nullptr ? last_rendered_->next : end_.next;
    return cur != &end_;
  }

  /// Renders the volatile tail (everything past the stable prefix) without
  /// consuming it; recomputed by the renderer on every refresh.
  template <typename Emit>
  void RenderVolatileTail(const RenderOptions& options, Emit&& emit) const {
    const Item* end = &end_;
    int skip = stable_skip_;
    Item* cur = last_rendered_ != nullptr ? last_rendered_->next : end_.next;
    for (; cur != end; cur = cur->next) {
      EmitVisible(*cur, options, &skip, emit);
    }
  }

 private:
  struct Interval;

  struct Item {
    enum class Type : uint8_t { kEvent, kBegin, kEnd };

    Item() = default;
    Item(Type t, Event e, Interval* iv)
        : interval(iv), event(std::move(e)), type(t) {}

    Item* prev = nullptr;
    Item* next = nullptr;
    Interval* interval = nullptr;  // valid when type == kBegin / kEnd
    Event event;                   // valid when type == kEvent
    Type type = Type::kEvent;
    // True iff the item was consumed into the stable rendered prefix
    // (maintained exactly; see SyncRender).  Mutable because the scan is
    // logically const.
    mutable bool rendered = false;
  };
  using Iter = Item*;

  // One bracketed region instance.  Re-using an update id creates a fresh
  // interval and rebinds the id; the old interval stays in the document but
  // is no longer addressable (paper: "only the latest one is active").
  struct Interval {
    StreamId id = 0;
    Iter begin = nullptr;  // sentinel; content lies strictly between
    Iter end = nullptr;
    bool hidden = false;
    // Insertion cursors currently parked on `end`: while nonzero, content
    // can still appear before the sentinel, so the stable scan must not
    // pass it.
    int pending_inserts = 0;
  };

  // Shared visibility/filter step for all three render walks: advances the
  // hidden-nesting depth and forwards visible simple events to `emit`.
  template <typename Emit>
  static void EmitVisible(const Item& item, const RenderOptions& options,
                          int* skip_depth, Emit&& emit) {
    if (item.type == Item::Type::kBegin) {
      if (*skip_depth > 0 || item.interval->hidden) ++*skip_depth;
      return;
    }
    if (item.type == Item::Type::kEnd) {
      if (*skip_depth > 0) --*skip_depth;
      return;
    }
    if (*skip_depth > 0) return;
    const Event& e = item.event;
    if (!options.keep_tuples && (e.kind == EventKind::kStartTuple ||
                                 e.kind == EventKind::kEndTuple)) {
      return;
    }
    Event copy = e;
    copy.id = options.out_id;
    emit(copy);
  }

  // Where the next event of region `id` goes (insert before the returned
  // position).  Falls back to the document tail for base streams.
  Iter InsertPos(StreamId id);

  // Splices a new item before `pos`; flags the stable prefix dirty when
  // `pos` was already consumed by the renderer.
  Iter InsertBefore(Iter pos, Item::Type type, const Event& e,
                    Interval* interval);

  // Unlinks and destroys one item (recycling its slot); destroying an end
  // sentinel also reclaims its interval.  Returns the next item.
  Iter RemoveItem(Iter i);

  // Creates a new interval for region `uid` with its sentinels inserted
  // before `pos`, binds it, and pushes its content cursor.
  Interval* OpenInterval(StreamId uid, Iter pos);

  // Unbinds (and physically removes) everything in [from, to), including
  // nested region bindings.
  void EraseRange(Iter from, Iter to);

  // Removes every insertion cursor parked on `pos` (an end sentinel about
  // to be erased).  If region `uid`'s own bracket was among them it is
  // still open: the region joins dropping_ so the rest of its input is
  // swallowed instead of inserted through a dangling pointer.
  void DropCursorsAt(Iter pos, StreamId uid);

  void Bind(StreamId id, Interval* interval);
  void Unbind(StreamId id);

  void PushCursor(StreamId id, Iter pos);
  void PopCursor(StreamId id);

  // The stable prefix no longer matches what the renderer consumed; the
  // next SyncRender replays from the top.
  void MarkStructural() {
    structural_ = true;
    last_rendered_ = nullptr;
  }

  // Circular-list sentinel: end_.next is the first item, end_.prev the
  // last; &end_ never holds content and is never rendered.
  Item end_;
  SlabArena<Item> item_arena_;
  SlabArena<Interval> interval_arena_;
  // Region id -> active interval.
  std::unordered_map<StreamId, Interval*> active_;
  // Insertion cursors for currently-open brackets, stacked per region id.
  std::unordered_map<StreamId, std::vector<Iter>> cursors_;
  // Lenient mode: regions whose updates are being dropped.
  std::unordered_set<StreamId> dropping_;
  Metrics* metrics_;
  bool lenient_;

  uint64_t epoch_ = 0;
  // Renderer-side scan state (logically const; see SyncRender).
  mutable Iter last_rendered_ = nullptr;  // null = scan at document start
  mutable int stable_skip_ = 0;  // hidden-nesting depth at the scan point
  mutable bool structural_ = false;
  mutable uint64_t full_rescans_ = 0;
};

/// Eagerly applies all updates in `stream` and returns the equivalent plain
/// event sequence (the paper's reference semantics, used as the oracle for
/// every unblocked operator).  `lenient` forwards to RegionDocument: use it
/// for pipeline outputs, where updates may legally address regions whose
/// content was already irrevocably reclaimed.
StatusOr<EventVec> Materialize(const EventVec& stream,
                               const RenderOptions& options = {},
                               bool lenient = false);

}  // namespace xflux

#endif  // XFLUX_CORE_REGION_DOCUMENT_H_
