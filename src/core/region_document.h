// Incremental document that applies update streams (paper Sections I, III).
//
// A RegionDocument consumes the global event stream one event at a time and
// maintains the *current* answer: the sequence of simple events that results
// from eagerly applying every update seen so far.  It is the engine behind
// both the result display (which renders the answer as text, Section IV's
// "final display of the query result") and the materializer used as the
// reference semantics in tests ("after the updates are applied, the result
// is equivalent to ...", Section III).
//
// Representation: a doubly-linked list of items.  Each update region is an
// *interval* delimited by two sentinel items.  Replacement splices the new
// region between the target's sentinels (after discarding the old content);
// insert-before/-after splice immediately outside them; hide/show toggle a
// visibility flag; freeze makes a region unaddressable (and physically
// deletes it when it is hidden, the irrevocable cheap path of Section V).

#ifndef XFLUX_CORE_REGION_DOCUMENT_H_
#define XFLUX_CORE_REGION_DOCUMENT_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.h"
#include "util/metrics.h"
#include "util/status.h"

namespace xflux {

/// Options controlling how RenderEvents flattens the current answer.
struct RenderOptions {
  StreamId out_id = 0;       ///< stream id stamped on every rendered event
  bool keep_tuples = false;  ///< keep sT/eT markers instead of stripping them
};

/// See file comment.
class RegionDocument {
 public:
  /// `metrics`, when non-null, tracks the live region-registry size.
  /// In lenient mode (the result display), updates addressed to unknown
  /// regions are dropped instead of erroring: a region vanishes legally
  /// when irrevocably removed content (hidden + frozen) is reclaimed, and
  /// in-flight source updates to it are then simply irrelevant.
  explicit RegionDocument(Metrics* metrics = nullptr, bool lenient = false)
      : metrics_(metrics), lenient_(lenient) {}

  RegionDocument(const RegionDocument&) = delete;
  RegionDocument& operator=(const RegionDocument&) = delete;

  /// Applies one event.  Simple events append at the cursor of their
  /// region (or at the document tail); update events restructure the
  /// document as described in the file comment.
  Status Feed(const Event& e);

  /// Applies a whole sequence, stopping at the first error.
  Status FeedAll(const EventVec& events);

  /// Flattens the currently-visible content into a plain event sequence.
  EventVec RenderEvents(const RenderOptions& options = {}) const;

  /// Number of regions still addressable by future updates.
  size_t live_region_count() const { return active_.size(); }

  /// Total items held (content + sentinels): the document's buffering cost.
  size_t item_count() const { return items_.size(); }

 private:
  struct Interval;

  struct Item {
    enum class Type : uint8_t { kEvent, kBegin, kEnd };
    Type type;
    Event event;         // valid when type == kEvent
    Interval* interval;  // valid when type == kBegin / kEnd
  };
  using ItemList = std::list<Item>;
  using Iter = ItemList::iterator;

  // One bracketed region instance.  Re-using an update id creates a fresh
  // interval and rebinds the id; the old interval stays in the document but
  // is no longer addressable (paper: "only the latest one is active").
  struct Interval {
    StreamId id = 0;
    Iter begin;  // sentinel; content lies strictly between begin and end
    Iter end;
    bool hidden = false;
  };

  // Where the next event of region `id` goes (insert before the returned
  // position).  Falls back to the document tail for base streams.
  Iter InsertPos(StreamId id);

  // Creates a new interval for region `uid` with its sentinels inserted
  // before `pos`, binds it, and pushes its content cursor.
  Interval* OpenInterval(StreamId uid, Iter pos);

  // Unbinds (and if `erase_items`, physically removes) everything in
  // [from, to), including nested region bindings.
  void EraseRange(Iter from, Iter to);

  // Removes every insertion cursor parked on `pos` (an end sentinel about
  // to be erased).  If region `uid`'s own bracket was among them it is
  // still open: the region joins dropping_ so the rest of its input is
  // swallowed instead of inserted through a dangling iterator.
  void DropCursorsAt(Iter pos, StreamId uid);

  void Bind(StreamId id, Interval* interval);
  void Unbind(StreamId id);

  ItemList items_;
  // Region id -> active interval.
  std::unordered_map<StreamId, Interval*> active_;
  // Insertion cursors for currently-open brackets, stacked per region id.
  std::unordered_map<StreamId, std::vector<Iter>> cursors_;
  // Owns every interval ever created (items reference them by pointer).
  std::vector<std::unique_ptr<Interval>> intervals_;
  // Lenient mode: regions whose updates are being dropped.
  std::unordered_set<StreamId> dropping_;
  Metrics* metrics_;
  bool lenient_;
};

/// Eagerly applies all updates in `stream` and returns the equivalent plain
/// event sequence (the paper's reference semantics, used as the oracle for
/// every unblocked operator).  `lenient` forwards to RegionDocument: use it
/// for pipeline outputs, where updates may legally address regions whose
/// content was already irrevocably reclaimed.
StatusOr<EventVec> Materialize(const EventVec& stream,
                               const RenderOptions& options = {},
                               bool lenient = false);

}  // namespace xflux

#endif  // XFLUX_CORE_REGION_DOCUMENT_H_
