// Deterministic pseudo-random generator for the synthetic data generators.
//
// splitmix64: tiny, fast, and fully reproducible across platforms, which the
// benchmark harness relies on (the same seed always yields byte-identical
// documents).

#ifndef XFLUX_UTIL_PRNG_H_
#define XFLUX_UTIL_PRNG_H_

#include <cstdint>
#include <vector>

namespace xflux {

/// A splitmix64 generator with convenience sampling helpers.
class Prng {
 public:
  explicit Prng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n).  Requires n > 0.
  uint64_t Uniform(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Zipf-like skewed index in [0, n): low indexes are much more likely.
  /// Used to model author-name reuse in the DBLP-like generator.
  uint64_t Skewed(uint64_t n) {
    double u = NextDouble();
    double x = u * u * u;  // cube concentrates mass near 0
    auto idx = static_cast<uint64_t>(x * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

 private:
  uint64_t state_;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_PRNG_H_
