// Copy-on-write handle for operator state snapshots (paper Section IV).
//
// The wrapper W keeps up to three OperatorState copies per mutable region
// (start / end / shadow) plus the live tail state.  Most of those copies
// are never written again: a region's start snapshot is only *read* as the
// s1/s2 pivot of adj(), and end snapshots of regions the stream never
// revisits stay untouched forever.  Deep-cloning them eagerly makes state
// cost O(regions x state size) even when nothing changes — the classic
// buffered-state blowup (Koch et al., buffer minimization).
//
// Cow<T> makes the copy lazy: Snapshot() is a refcount bump, and the deep
// T::Clone() happens only on the first Mutable() call while the physical
// object is shared.  Because every mutation path goes through Mutable(),
// two handles can never observe each other's writes — value semantics are
// preserved exactly, only the copy is deferred.
//
// Aliasing note for adj(): Adjust(state, s1, s2) receives s1/s2 as const
// references obtained from live handles.  If `state` shares its physical
// object with s1 or s2 the use count is >= 2, so Mutable() clones before
// the write and the pivot stays valid for the remaining walk.
//
// Not thread-safe beyond what shared_ptr gives: concurrent Mutable() on
// handles sharing one object is a race.  The pipeline only touches a
// stage's states from that stage's worker thread, which is all we need.

#ifndef XFLUX_UTIL_COW_H_
#define XFLUX_UTIL_COW_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "util/check.h"

namespace xflux {

/// Copy-on-write handle.  T must expose Clone() returning a unique_ptr
/// convertible to unique_ptr<T> (OperatorState's virtual Clone qualifies).
template <typename T>
class Cow {
 public:
  Cow() = default;

  /// Takes ownership of a freshly built object (generation 0).  This is
  /// the only way to introduce new physical state; everything else flows
  /// from Snapshot() + Mutable().
  static Cow Adopt(std::unique_ptr<T> obj) {
    Cow handle;
    handle.ptr_ = std::shared_ptr<T>(std::move(obj));
    return handle;
  }

  /// O(1) logical copy: shares the physical object.
  Cow Snapshot() const { return *this; }

  explicit operator bool() const { return ptr_ != nullptr; }

  const T* get() const { return ptr_.get(); }
  const T& operator*() const { return *ptr_; }
  const T* operator->() const { return ptr_.get(); }

  /// True when this handle is the sole owner (Mutable() would not clone).
  bool unique() const { return ptr_ != nullptr && ptr_.use_count() == 1; }

  /// How many handles share the physical object (0 when empty).
  long use_count() const { return ptr_.use_count(); }

  /// Physical generation of this handle's object: bumped each time a
  /// Mutable() call had to clone.  Two handles with different versions
  /// are guaranteed to own different physical objects.
  uint64_t version() const { return version_; }

  /// Write access.  Clones first iff the object is shared; reports the
  /// clone through `cloned` (left untouched otherwise) so callers can
  /// feed the clone/share counters.
  T* Mutable(bool* cloned = nullptr) {
    XFLUX_CHECK(ptr_ != nullptr);
    if (ptr_.use_count() > 1) {
      ptr_ = std::shared_ptr<T>(ptr_->Clone());
      ++version_;
      if (cloned != nullptr) *cloned = true;
    }
    return ptr_.get();
  }

  void Reset() {
    ptr_.reset();
    version_ = 0;
  }

 private:
  std::shared_ptr<T> ptr_;
  uint64_t version_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_COW_H_
