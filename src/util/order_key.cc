#include "util/order_key.h"

#include <cassert>
#include <cstdint>
#include <cstdio>

namespace xflux {

// Encoding: a key is [len][int digits][fraction bytes], where `len` is the
// number of big-endian integer digits (no leading zeros; the integer 0 is
// the single digit 0x00).  Lexicographic byte order equals numeric order:
// the len byte ranks all shorter integers below all longer ones.  The
// integer part makes the streaming append pattern — Between(cursor, Max),
// millions of times — produce O(log n) length keys (integer increments)
// instead of ever-growing midpoints; fractions handle the retro-located
// inserts between existing keys.  Generated fractions never end in 0x00,
// which preserves density.

namespace {

int ByteAt(const std::string& s, size_t i) {
  return i < s.size() ? static_cast<unsigned char>(s[i]) : -1;
}

// Returns a byte string strictly greater than `a` that extends `prefix`,
// assuming there is no upper bound beyond `prefix`.  Skips over 0xFF runs
// in `a` and then picks the midpoint of the remaining headroom.
std::string AboveSuffix(std::string prefix, const std::string& a, size_t i) {
  size_t j = i;
  while (j < a.size() && static_cast<unsigned char>(a[j]) == 0xFF) {
    prefix.push_back('\xFF');
    ++j;
  }
  int m = ByteAt(a, j);
  int up = (m + 257) / 2;  // strictly in (m, 256); never 0
  assert(up > m && up <= 255 && up >= 1);
  prefix.push_back(static_cast<char>(up));
  return prefix;
}

// Core midpoint on raw fraction strings; requires a < b lexicographically.
std::string BetweenDigits(const std::string& a, const std::string& b) {
  std::string prefix;
  size_t i = 0;
  for (;;) {
    int ca = ByteAt(a, i);
    int cb = i < b.size() ? static_cast<unsigned char>(b[i]) : 256;
    assert(cb != 256 && "upper key exhausted: inputs were not ordered");
    if (ca == cb) {
      prefix.push_back(static_cast<char>(ca));
      ++i;
      continue;
    }
    assert(ca < cb);
    if (cb - ca >= 2) {
      int mid = ca + (cb - ca) / 2;  // strictly in (ca, cb)
      if (mid >= 1) {
        prefix.push_back(static_cast<char>(mid));
        return prefix;
      }
      // mid would be 0x00 (ca == -1, cb <= 2); descend below cb instead.
      prefix.push_back('\0');
      prefix.push_back('\x80');
      return prefix;
    }
    // cb == ca + 1: no room at this digit.
    if (ca >= 0) {
      // Take the lower branch and find something above a's remainder.
      prefix.push_back(static_cast<char>(ca));
      return AboveSuffix(std::move(prefix), a, i + 1);
    }
    // ca == -1, cb == 0: descend into b's 0x00 digit and keep looking.
    prefix.push_back('\0');
    ++i;
  }
}

struct Parts {
  // The integer band: -2 for Min, -1 for the sub-zero band (len byte 0),
  // otherwise the encoded non-negative integer.
  int64_t integer = 0;
  std::string fraction;
};

Parts Decode(const std::string& digits) {
  Parts parts;
  if (digits.empty()) {
    parts.integer = -2;  // Min
    return parts;
  }
  auto len = static_cast<size_t>(static_cast<unsigned char>(digits[0]));
  if (len == 0) {
    parts.integer = -1;  // the sub-zero band
    parts.fraction = digits.substr(1);
    return parts;
  }
  assert(digits.size() >= 1 + len);
  uint64_t value = 0;
  for (size_t i = 0; i < len; ++i) {
    value = (value << 8) | static_cast<unsigned char>(digits[1 + i]);
  }
  parts.integer = static_cast<int64_t>(value);
  parts.fraction = digits.substr(1 + len);
  return parts;
}

std::string EncodeInteger(int64_t value) {
  if (value < 0) {
    // The sub-zero band: len byte 0; callers append a fraction.
    return std::string(1, '\0');
  }
  auto v = static_cast<uint64_t>(value);
  std::string digits;
  do {
    digits.insert(digits.begin(), static_cast<char>(v & 0xFF));
    v >>= 8;
  } while (v != 0);
  std::string out;
  out.push_back(static_cast<char>(digits.size()));
  out += digits;
  return out;
}

}  // namespace

OrderKey OrderKey::Between(const OrderKey& lo, const OrderKey& hi) {
  assert(lo < hi && "Between requires lo < hi");
  OrderKey out;
  Parts a = Decode(lo.digits_);
  if (hi.is_max_) {
    // The streaming append: bump the integer part.
    out.digits_ = EncodeInteger(a.integer < 0 ? 0 : a.integer + 1);
    return out;
  }
  Parts b = Decode(hi.digits_);
  if (b.integer >= a.integer + 2) {
    // A whole integer fits strictly between.
    int64_t mid = a.integer + 1;
    out.digits_ = EncodeInteger(mid);
    if (mid < 0) out.digits_ += '\x80';  // band keys carry a fraction
    return out;
  }
  if (b.integer == a.integer + 1) {
    if (a.integer == -2) {
      // lo is Min and hi sits in the sub-zero band: bisect below hi's
      // fraction (band keys always carry one).
      out.digits_ = EncodeInteger(-1) + BetweenDigits("", b.fraction);
    } else {
      // Stay in lo's band, above lo's fraction: strictly below any key of
      // the next band.
      out.digits_ = EncodeInteger(a.integer) + AboveSuffix("", a.fraction, 0);
    }
    return out;
  }
  // Same band: bisect the fractions.
  assert(b.integer == a.integer);
  out.digits_ =
      EncodeInteger(b.integer) + BetweenDigits(a.fraction, b.fraction);
  return out;
}

std::string OrderKey::ToString() const {
  if (is_max_) return "MAX";
  if (digits_.empty()) return "MIN";
  Parts parts = Decode(digits_);
  std::string out = std::to_string(parts.integer);  // -1: sub-zero band
  if (!parts.fraction.empty()) {
    out += ".";
    char buf[3];
    for (unsigned char c : parts.fraction) {
      std::snprintf(buf, sizeof(buf), "%02x", c);
      out += buf;
    }
  }
  return out;
}

}  // namespace xflux
