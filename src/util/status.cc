#include "util/status.h"

namespace xflux {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kNotSupported:
      return "NOT_SUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kProtocolViolation:
      return "PROTOCOL_VIOLATION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xflux
