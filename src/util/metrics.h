// Instrumentation counters shared by a pipeline.
//
// These back the "events" (state-transformer method calls) and "mem"
// columns of the paper's Table 2, plus the buffering measurements of the
// ablation benchmarks.

#ifndef XFLUX_UTIL_METRICS_H_
#define XFLUX_UTIL_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace xflux {

/// Counters and high-water-mark gauges for one pipeline run.
///
/// All stages of a pipeline share one Metrics instance (via the pipeline
/// context); the benchmarks read it after the stream is drained.
class Metrics {
 public:
  /// One state-transformer invocation (the paper's "events" column counts
  /// these in millions).
  void CountTransformerCall(uint64_t n = 1) { transformer_calls_ += n; }

  /// One event emitted downstream by any stage.
  void CountEventEmitted(uint64_t n = 1) { events_emitted_ += n; }

  /// One adjust() application triggered by a retroactive update.
  void CountAdjustCall() { ++adjust_calls_; }

  /// Tracks creation/destruction of per-region state copies kept by the
  /// adjustment wrapper (mutability analysis shrinks this).
  void OnStateCreated() {
    ++live_states_;
    max_live_states_ = std::max(max_live_states_, live_states_);
  }
  void OnStateDropped() { --live_states_; }

  /// Copy-on-write snapshot accounting (src/util/cow.h): a share is an O(1)
  /// logical copy, a clone is the deep OperatorState copy a Mutable() call
  /// had to make because the object was shared.  Before COW every share
  /// below was a clone; the ratio is the state plane's saving.
  void OnStateShare() { ++state_shares_; }
  void OnStateClone() { ++state_clones_; }

  /// Tracks operator-internal buffering (suspension queues, naive
  /// baselines' element caches).  `bytes` approximates event payloads.
  void OnBuffered(int64_t events, int64_t bytes) {
    buffered_events_ += events;
    buffered_bytes_ += bytes;
    max_buffered_events_ = std::max(max_buffered_events_, buffered_events_);
    max_buffered_bytes_ = std::max(max_buffered_bytes_, buffered_bytes_);
  }
  void OnUnbuffered(int64_t events, int64_t bytes) {
    buffered_events_ -= events;
    buffered_bytes_ -= bytes;
  }

  /// Tracks live entries in the result display's region registry.
  void OnDisplayRegion(int64_t delta) {
    display_regions_ += delta;
    max_display_regions_ = std::max(max_display_regions_, display_regions_);
  }

  // -- robustness counters (ProtocolGuard and stage self-recovery) --

  /// One protocol / resource-limit violation detected by the guard.
  void CountGuardViolation() { ++guard_violations_; }
  /// Input events swallowed by the guard's recovery policy.
  void CountGuardDroppedEvent(uint64_t n = 1) { guard_dropped_events_ += n; }
  /// Whole update regions discarded by the kDropRegion policy.
  void CountGuardDroppedRegion() { ++guard_dropped_regions_; }
  /// kResync recoveries (skip to the next balanced bracket point).
  void CountGuardResync() { ++guard_resyncs_; }
  /// A stage degraded gracefully on inconsistent input instead of
  /// asserting (e.g. an update close whose target state vanished).
  void CountStageRecovery() { ++stage_recoveries_; }

  // -- service counters (xflux_serve admission control and load shedding) --

  /// A session the AdmissionController turned away (rejected with
  /// retry-after rather than admitted).
  void CountAdmissionReject() { ++admission_rejects_; }
  /// One load-shedding action at degradation tier `n` (1 = delta push
  /// deferred, 2 = update region dropped, 3 = session evicted).  Tiers
  /// outside [1,3] are clamped so a miscounting caller cannot corrupt
  /// adjacent counters.
  void CountShedTier(int n) {
    if (n < 1) n = 1;
    if (n > 3) n = 3;
    ++shed_tier_[n - 1];
  }
  /// A session closed by deadline enforcement (idle-read or slow-consumer
  /// write timeout).
  void CountSessionTimeout() { ++session_timeouts_; }

  uint64_t transformer_calls() const { return transformer_calls_; }
  uint64_t events_emitted() const { return events_emitted_; }
  uint64_t adjust_calls() const { return adjust_calls_; }
  int64_t live_states() const { return live_states_; }
  uint64_t state_shares() const { return state_shares_; }
  uint64_t state_clones() const { return state_clones_; }
  int64_t max_live_states() const { return max_live_states_; }
  int64_t buffered_events() const { return buffered_events_; }
  int64_t max_buffered_events() const { return max_buffered_events_; }
  int64_t max_buffered_bytes() const { return max_buffered_bytes_; }
  int64_t display_regions() const { return display_regions_; }
  int64_t max_display_regions() const { return max_display_regions_; }
  uint64_t guard_violations() const { return guard_violations_; }
  uint64_t guard_dropped_events() const { return guard_dropped_events_; }
  uint64_t guard_dropped_regions() const { return guard_dropped_regions_; }
  uint64_t guard_resyncs() const { return guard_resyncs_; }
  uint64_t stage_recoveries() const { return stage_recoveries_; }
  uint64_t admission_rejects() const { return admission_rejects_; }
  /// Shed actions at tier `n` in [1,3]; 0 for out-of-range tiers.
  uint64_t shed_tier(int n) const {
    return (n >= 1 && n <= 3) ? shed_tier_[n - 1] : 0;
  }
  uint64_t session_timeouts() const { return session_timeouts_; }

  /// Rough resident footprint of pipeline state, in bytes: per-region state
  /// copies plus buffered payload plus display registry entries.  This is
  /// the analogue of the paper's "mem" column (heap used by the engine).
  int64_t ApproxStateBytes() const {
    constexpr int64_t kPerStateBytes = 96;    // typical operator state
    constexpr int64_t kPerRegionBytes = 64;   // display registry entry
    return live_states_ * kPerStateBytes + buffered_bytes_ +
           display_regions_ * kPerRegionBytes;
  }
  int64_t MaxApproxStateBytes() const {
    constexpr int64_t kPerStateBytes = 96;
    constexpr int64_t kPerRegionBytes = 64;
    return max_live_states_ * kPerStateBytes + max_buffered_bytes_ +
           max_display_regions_ * kPerRegionBytes;
  }

  void Reset() { *this = Metrics(); }

  /// Folds another shard into this one — how the parallel executor
  /// aggregates per-segment Metrics shards back into the pipeline's root
  /// instance after the worker threads join.  Monotone counters add.  The
  /// current-level gauges (live_states, buffered_*, display_regions) also
  /// add: each shard tracks disjoint state, so the sums are exact.  The
  /// high-water gauges add too, which makes the merged maxima an *upper
  /// bound* (per-shard peaks need not coincide in time) — documented in
  /// DESIGN.md §6; serial runs have a single shard and stay exact.
  void MergeFrom(const Metrics& other) {
    transformer_calls_ += other.transformer_calls_;
    events_emitted_ += other.events_emitted_;
    adjust_calls_ += other.adjust_calls_;
    live_states_ += other.live_states_;
    state_shares_ += other.state_shares_;
    state_clones_ += other.state_clones_;
    max_live_states_ += other.max_live_states_;
    buffered_events_ += other.buffered_events_;
    buffered_bytes_ += other.buffered_bytes_;
    max_buffered_events_ += other.max_buffered_events_;
    max_buffered_bytes_ += other.max_buffered_bytes_;
    display_regions_ += other.display_regions_;
    max_display_regions_ += other.max_display_regions_;
    guard_violations_ += other.guard_violations_;
    guard_dropped_events_ += other.guard_dropped_events_;
    guard_dropped_regions_ += other.guard_dropped_regions_;
    guard_resyncs_ += other.guard_resyncs_;
    stage_recoveries_ += other.stage_recoveries_;
    admission_rejects_ += other.admission_rejects_;
    for (int i = 0; i < 3; ++i) shed_tier_[i] += other.shed_tier_[i];
    session_timeouts_ += other.session_timeouts_;
  }

  /// One-line human-readable dump for benches and examples.
  std::string ToString() const;

  /// One JSON object with every counter and high-water mark (see
  /// EXPERIMENTS.md for the schema).
  std::string ToJson() const;

 private:
  uint64_t transformer_calls_ = 0;
  uint64_t events_emitted_ = 0;
  uint64_t adjust_calls_ = 0;
  int64_t live_states_ = 0;
  int64_t max_live_states_ = 0;
  uint64_t state_shares_ = 0;
  uint64_t state_clones_ = 0;
  int64_t buffered_events_ = 0;
  int64_t buffered_bytes_ = 0;
  int64_t max_buffered_events_ = 0;
  int64_t max_buffered_bytes_ = 0;
  int64_t display_regions_ = 0;
  int64_t max_display_regions_ = 0;
  uint64_t guard_violations_ = 0;
  uint64_t guard_dropped_events_ = 0;
  uint64_t guard_dropped_regions_ = 0;
  uint64_t guard_resyncs_ = 0;
  uint64_t stage_recoveries_ = 0;
  uint64_t admission_rejects_ = 0;
  uint64_t shed_tier_[3] = {0, 0, 0};
  uint64_t session_timeouts_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_METRICS_H_
