// Sticky first-error channel.
//
// The pipeline's error-reporting backbone: any component holding a channel
// pointer can report a non-OK Status; the first one latches and every later
// report is ignored (it is almost always a cascade of the first).  Pipeline
// stages stop dispatching once the shared channel is poisoned, and entry
// points (SaxParser::Feed/Finish, QuerySession) surface the latched Status
// to the caller — so a protocol violation deep inside a Release-build
// pipeline ends as a clean error return, never as undefined behavior.

#ifndef XFLUX_UTIL_ERROR_CHANNEL_H_
#define XFLUX_UTIL_ERROR_CHANNEL_H_

#include <utility>

#include "util/status.h"

namespace xflux {

/// See file comment.  Not thread-safe (a pipeline runs on one thread).
class ErrorChannel {
 public:
  /// Latches `status` if it is the first non-OK report.
  void Report(Status status) {
    if (ok_ && !status.ok()) {
      error_ = std::move(status);
      ok_ = false;
    }
  }

  /// False once any error was reported.  Hot-path check: one bool load.
  bool ok() const { return ok_; }

  /// The first reported error, or OK.
  const Status& status() const { return error_; }

  /// Clears the channel (tests and session reuse).
  void Reset() {
    error_ = Status::OK();
    ok_ = true;
  }

 private:
  Status error_;
  bool ok_ = true;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_ERROR_CHANNEL_H_
