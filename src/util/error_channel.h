// Sticky first-error channel.
//
// The pipeline's error-reporting backbone: any component holding a channel
// pointer can report a non-OK Status; the first one latches and every later
// report is ignored (it is almost always a cascade of the first).  Pipeline
// stages stop dispatching once the shared channel is poisoned, and entry
// points (SaxParser::Feed/Finish, QuerySession) surface the latched Status
// to the caller — so a protocol violation deep inside a Release-build
// pipeline ends as a clean error return, never as undefined behavior.

#ifndef XFLUX_UTIL_ERROR_CHANNEL_H_
#define XFLUX_UTIL_ERROR_CHANNEL_H_

#include <atomic>
#include <mutex>
#include <utility>

#include "util/status.h"

namespace xflux {

/// See file comment.  Thread-safe: under the parallel executor one channel
/// is shared by stages on different worker threads, so Report serializes
/// writers behind a mutex (violations are rare — this is never hot) while
/// ok() stays a single atomic load, which on the serial path costs exactly
/// what the old plain bool did.  The latched Status is published with
/// release ordering and only read by threads that observed ok() == false
/// with acquire ordering, so status() needs no lock.
class ErrorChannel {
 public:
  /// Latches `status` if it is the first non-OK report.
  void Report(Status status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!ok_.load(std::memory_order_relaxed)) return;
    error_ = std::move(status);
    ok_.store(false, std::memory_order_release);
  }

  /// False once any error was reported.  Hot-path check: one atomic load.
  bool ok() const { return ok_.load(std::memory_order_acquire); }

  /// The first reported error, or OK.
  const Status& status() const {
    if (ok_.load(std::memory_order_acquire)) return ok_status_;
    return error_;
  }

  /// Clears the channel (tests and session reuse).  Not thread-safe: call
  /// only while no pipeline is running.
  void Reset() {
    error_ = Status::OK();
    ok_.store(true, std::memory_order_release);
  }

 private:
  mutable std::mutex mu_;
  Status error_;
  const Status ok_status_;
  std::atomic<bool> ok_{true};
};

}  // namespace xflux

#endif  // XFLUX_UTIL_ERROR_CHANNEL_H_
