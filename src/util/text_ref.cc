#include "util/text_ref.h"

#include <charconv>

namespace xflux {

bool ParseLeadingDouble(std::string_view text, double* value) {
  size_t i = 0;
  // strtod skips the full C isspace set before parsing.
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
          text[i] == '\r' || text[i] == '\f' || text[i] == '\v')) {
    ++i;
  }
  // from_chars rejects an explicit '+', strtod accepts it.
  if (i < text.size() && text[i] == '+') ++i;
  double v = 0;
  auto result = std::from_chars(text.data() + i, text.data() + text.size(), v);
  if (result.ec != std::errc() || result.ptr == text.data() + i) {
    // A bare "+" (or sign followed by junk) parses nothing, as in strtod.
    *value = 0;
    return false;
  }
  *value = v;
  return true;
}

}  // namespace xflux
