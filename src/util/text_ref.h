// Shared immutable character-data payloads.
//
// A cD event's text lives in one heap buffer, refcounted intrusively; a
// TextRef is a single pointer, so copying an event through wrapper state
// maps, shadow snapshots, and RegionDocument is a refcount bump instead of
// a string allocation.  Buffers are immutable after construction and
// NUL-terminated (c_str() feeds strtod in the aggregates without a copy).

#ifndef XFLUX_UTIL_TEXT_REF_H_
#define XFLUX_UTIL_TEXT_REF_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <utility>

namespace xflux {

/// A refcounted immutable text buffer.  Empty text is represented as a
/// null rep (no allocation, no refcount traffic).
class TextRef {
 public:
  TextRef() = default;

  TextRef(const TextRef& other) : rep_(other.rep_) {
    if (rep_ != nullptr) rep_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  TextRef(TextRef&& other) noexcept : rep_(other.rep_) {
    other.rep_ = nullptr;
  }
  TextRef& operator=(TextRef other) noexcept {
    std::swap(rep_, other.rep_);
    return *this;
  }
  ~TextRef() { Release(); }

  /// Allocates one buffer holding a copy of `chars`.  Empty input yields
  /// the allocation-free empty ref.
  static TextRef Copy(std::string_view chars);

  std::string_view view() const {
    return rep_ == nullptr ? std::string_view()
                           : std::string_view(data(), rep_->size);
  }
  /// NUL-terminated; the empty ref returns a static "".
  const char* c_str() const { return rep_ == nullptr ? "" : data(); }

  size_t size() const { return rep_ == nullptr ? 0 : rep_->size; }
  bool empty() const { return rep_ == nullptr || rep_->size == 0; }

  /// Number of TextRefs sharing this buffer (0 for the empty ref).
  uint32_t use_count() const {
    return rep_ == nullptr ? 0 : rep_->refs.load(std::memory_order_relaxed);
  }

  /// Buffer identity — equal means physically shared storage.  Used by the
  /// aliasing tests and the buffered-bytes ledger; null for the empty ref.
  const void* buffer_id() const { return rep_; }

  friend bool operator==(const TextRef& a, const TextRef& b) {
    return a.rep_ == b.rep_ || a.view() == b.view();
  }
  friend bool operator!=(const TextRef& a, const TextRef& b) {
    return !(a == b);
  }

 private:
  struct Rep {
    std::atomic<uint32_t> refs;
    uint32_t size;
    // Followed in the same allocation by `size` chars and a NUL.
  };

  explicit TextRef(Rep* rep) : rep_(rep) {}

  const char* data() const {
    return reinterpret_cast<const char*>(rep_) + sizeof(Rep);
  }

  void Release() {
    if (rep_ != nullptr &&
        rep_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      rep_->~Rep();
      ::operator delete(rep_);
    }
    rep_ = nullptr;
  }

  Rep* rep_ = nullptr;
};

inline TextRef TextRef::Copy(std::string_view chars) {
  if (chars.empty()) return TextRef();
  void* mem = ::operator new(sizeof(Rep) + chars.size() + 1);
  Rep* rep = new (mem) Rep{std::atomic<uint32_t>(1),
                           static_cast<uint32_t>(chars.size())};
  char* data = reinterpret_cast<char*>(mem) + sizeof(Rep);
  std::memcpy(data, chars.data(), chars.size());
  data[chars.size()] = '\0';
  return TextRef(rep);
}

}  // namespace xflux

#endif  // XFLUX_UTIL_TEXT_REF_H_
