// Shared immutable character-data payloads.
//
// A cD event's text lives in one heap buffer, refcounted intrusively; a
// TextRef is a single pointer, so copying an event through wrapper state
// maps, shadow snapshots, and RegionDocument is a refcount bump instead of
// a string allocation.
//
// Three representations share the word (low-bits tagged):
//  - owned: the classic rep — refcount header + the chars in one
//    allocation.
//  - slice: a borrowed view into a refcounted StableChunk (the tokenizer's
//    pinned input buffer).  Entity-free character data that lands inside
//    one chunk aliases the input instead of being copied; the slice holds
//    a chunk reference, so the text outlives the parser and the chunk is
//    reclaimed when the last slice (or the parser) lets go.
//  - inline: text of up to 7 bytes packed directly into the word — no
//    allocation and no refcount traffic at all (prices, counts, and short
//    attribute values are the bulk of real cD payloads).
//
// All reps are immutable after construction.  Payloads are NOT
// NUL-terminated (slices point into the middle of a chunk) — consumers
// use view(); the aggregates parse numbers with ParseLeadingDouble.  An
// inline ref's view() points into the TextRef itself, so it is valid only
// while that TextRef stays alive at that address — take views fresh, do
// not cache one across a move of the owning Event.

#ifndef XFLUX_UTIL_TEXT_REF_H_
#define XFLUX_UTIL_TEXT_REF_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace xflux {

/// A refcounted, fixed-capacity, stable byte buffer.  The tokenizer fills
/// one chunk per input window and hands out TextRef slices into it; the
/// chunk's storage never moves or shrinks, so slice views stay valid for
/// as long as any reference (parser handle or slice) is alive.
///
/// A chunk either owns its storage (Allocate: the bytes trail the refcount
/// header in one allocation) or adopts foreign storage (Adopt: the bytes
/// belong to the caller — a heap buffer, an mmap'd file window — and a
/// type-erased deleter runs exactly once when the last reference drops).
/// Adopted chunks carry a small writable sidecar arena next to the header
/// so the tokenizer can still bump-allocate embedded slice reps without
/// writing into memory it does not own.
class StableChunk {
 public:
  /// Destruction callback for adopted storage.  Runs exactly once, when
  /// the last reference (chunk handle or TextRef slice) drops; it receives
  /// the original data pointer and size, e.g. to munmap or delete.
  using Deleter = void (*)(void* user, const char* data, size_t size);

  StableChunk() = default;

  static StableChunk Allocate(size_t capacity) {
    XFLUX_CHECK(capacity > 0 && capacity <= UINT32_MAX);
    void* mem = ::operator new(sizeof(Rep) + capacity);
    Rep* rep = new (mem) Rep{std::atomic<uint32_t>(1),
                             static_cast<uint32_t>(capacity),
                             reinterpret_cast<char*>(mem) + sizeof(Rep),
                             /*deleter=*/nullptr, /*user=*/nullptr,
                             /*sidecar=*/0};
    return StableChunk(rep);
  }

  /// Wraps `size` caller-owned bytes at `data` without copying.  The bytes
  /// must stay valid and immutable until `deleter` runs (when the last
  /// reference drops); a null deleter means the caller guarantees the
  /// storage outlives every reference (e.g. a bench scanning a live
  /// std::string in place).  `sidecar_bytes` sizes the writable header
  /// arena (SIZE_MAX picks a default proportional to `size`).
  static StableChunk Adopt(const char* data, size_t size, Deleter deleter,
                           void* user, size_t sidecar_bytes = SIZE_MAX) {
    XFLUX_CHECK(data != nullptr && size > 0 && size <= UINT32_MAX);
    if (sidecar_bytes == SIZE_MAX) sidecar_bytes = DefaultSidecarBytes(size);
    sidecar_bytes &= ~size_t{7};
    void* mem = ::operator new(sizeof(Rep) + sidecar_bytes);
    Rep* rep = new (mem) Rep{std::atomic<uint32_t>(1),
                             static_cast<uint32_t>(size), data, deleter, user,
                             static_cast<uint32_t>(sidecar_bytes)};
    return StableChunk(rep);
  }

  /// Adopts a std::string's buffer: the string is moved to the heap and
  /// freed when the last reference drops.  Empty strings yield the invalid
  /// chunk.
  static StableChunk AdoptString(std::string&& s) {
    if (s.empty()) return StableChunk();
    auto* owned = new std::string(std::move(s));
    return Adopt(
        owned->data(), owned->size(),
        [](void* user, const char*, size_t) {
          delete static_cast<std::string*>(user);
        },
        owned);
  }

  StableChunk(const StableChunk& other) : rep_(other.rep_) {
    if (rep_ != nullptr) rep_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  StableChunk(StableChunk&& other) noexcept : rep_(other.rep_) {
    other.rep_ = nullptr;
  }
  StableChunk& operator=(StableChunk other) noexcept {
    std::swap(rep_, other.rep_);
    return *this;
  }
  ~StableChunk() { Release(rep_); }

  bool valid() const { return rep_ != nullptr; }
  size_t capacity() const { return rep_ == nullptr ? 0 : rep_->capacity; }

  const char* data() const { return rep_ == nullptr ? nullptr : rep_->data; }
  /// Writable storage.  The owner appends into not-yet-published bytes
  /// only; bytes already referenced by slices are immutable.  Adopted
  /// storage is never writable (it may be a read-only mapping).
  char* mutable_data() {
    if (rep_ == nullptr) return nullptr;
    XFLUX_CHECK(owns_storage());
    return reinterpret_cast<char*>(rep_) + sizeof(Rep);
  }

  /// False for adopted chunks: the bytes belong to the caller (and may be
  /// read-only), so the tokenizer must not write into or recycle them.
  bool owns_storage() const {
    return rep_ != nullptr && rep_->data == reinterpret_cast<const char*>(rep_) + sizeof(Rep);
  }

  /// Writable header arena carried alongside adopted storage (zero-sized
  /// for owned chunks, which embed headers in the data region instead).
  char* sidecar_data() {
    return rep_ == nullptr ? nullptr
                           : reinterpret_cast<char*>(rep_) + sizeof(Rep);
  }
  size_t sidecar_capacity() const {
    return rep_ == nullptr ? 0 : rep_->sidecar;
  }

  /// Number of handles (chunk handles + slices) sharing this buffer.  An
  /// acquire load: observing 1 from the sole remaining handle synchronizes
  /// with every released reference, so the owner may then reuse the
  /// storage (the tokenizer's in-place compaction).
  uint32_t use_count() const {
    return rep_ == nullptr ? 0 : rep_->refs.load(std::memory_order_acquire);
  }

  /// Buffer identity for the ledger/tests; null for the invalid chunk.
  const void* id() const { return rep_; }

 private:
  friend class TextRef;

  struct Rep {
    std::atomic<uint32_t> refs;
    uint32_t capacity;
    const char* data;  // trailing storage (owned) or foreign bytes (adopted)
    Deleter deleter;   // runs once at last release; null for owned chunks
    void* user;
    uint32_t sidecar;  // trailing header-arena bytes (adopted chunks)
    // Followed in the same allocation by `capacity` bytes of storage
    // (owned) or `sidecar` bytes of slice-header arena (adopted).
  };
  static_assert(sizeof(Rep) % 8 == 0,
                "trailing storage must stay 8-aligned for embedded reps");

  /// Default sidecar sizing for adopted chunks: enough embedded headers
  /// for dense markup (XMark/DBLP run one aliased text per ~45-55 payload
  /// bytes, and a SliceRep is 24 bytes, so headers can approach half the
  /// payload).  Matching the owned path's 2x-window headroom keeps the
  /// adopted path off the per-text heap fallback; the sidecar is
  /// transient — it is freed with the chunk.
  static size_t DefaultSidecarBytes(size_t size) {
    size_t bytes = size / 2 + size / 8;
    if (bytes < 4096) bytes = 4096;
    if (bytes > (48u << 20)) bytes = 48u << 20;
    return bytes;
  }

  explicit StableChunk(Rep* rep) : rep_(rep) {}

  static void AddRef(Rep* rep) {
    if (rep != nullptr) rep->refs.fetch_add(1, std::memory_order_relaxed);
  }
  static void Release(Rep* rep) {
    if (rep != nullptr &&
        rep->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (rep->deleter != nullptr) {
        rep->deleter(rep->user, rep->data, rep->capacity);
      }
      rep->~Rep();
      ::operator delete(rep);
    }
  }

  Rep* rep_ = nullptr;
};

/// A refcounted immutable text buffer (owned, a chunk slice, or packed
/// inline).  Empty text is represented as a null rep (no allocation, no
/// refcount traffic).
class TextRef {
 public:
  /// Text up to this long is packed into the ref itself — no heap buffer.
  /// (The packing assumes little-endian byte order; big-endian builds take
  /// the owned path for everything.)
  static constexpr bool kInlineEnabled =
      std::endian::native == std::endian::little;
  static constexpr size_t kInlineBytes = kInlineEnabled ? 7 : 0;

  TextRef() = default;

  TextRef(const TextRef& other) : bits_(other.bits_) {
    RefHeader* h = header();
    if (h != nullptr) h->refs.fetch_add(1, std::memory_order_relaxed);
  }
  TextRef(TextRef&& other) noexcept : bits_(other.bits_) {
    other.bits_ = 0;
  }
  TextRef& operator=(TextRef other) noexcept {
    std::swap(bits_, other.bits_);
    return *this;
  }
  ~TextRef() { Release(); }

  /// Allocates one buffer holding a copy of `chars`.  Empty input yields
  /// the allocation-free empty ref.
  static TextRef Copy(std::string_view chars);

  /// Single-allocation copy of the concatenation a + b (the tokenizer's
  /// spilled-prefix + in-chunk-tail flush).
  static TextRef Copy2(std::string_view a, std::string_view b);

  /// A borrowed view of `size` bytes at `data` inside `chunk`'s storage.
  /// Holds one chunk reference; the bytes must already be written and are
  /// immutable from here on.  Empty input yields the empty ref.
  static TextRef Slice(const StableChunk& chunk, const char* data,
                       size_t size);

  /// Like Slice, but the rep itself lives in caller-provided storage
  /// inside the chunk (the tokenizer bump-allocates rep headers from the
  /// top of its input window, so steady-state aliased text performs no
  /// heap allocation at all).  `rep_storage` must be 8-aligned, lie inside
  /// the chunk, and stay untouched until the chunk dies: when the last ref
  /// drops, only the chunk reference is released — the rep's storage is
  /// reclaimed with the chunk allocation itself.
  static TextRef EmbeddedSlice(const StableChunk& chunk, void* rep_storage,
                               const char* data, size_t size);

  std::string_view view() const {
    if (bits_ == 0) return std::string_view();
    if (is_inline()) {
      return std::string_view(reinterpret_cast<const char*>(&bits_) + 1,
                              inline_size());
    }
    if (is_slice()) {
      const SliceRep* s = slice();
      return std::string_view(s->data, s->size);
    }
    const OwnedRep* o = owned();
    return std::string_view(reinterpret_cast<const char*>(o + 1), o->size);
  }

  size_t size() const {
    if (is_inline()) return inline_size();
    const RefHeader* h = header();
    return h == nullptr ? 0 : h->size;
  }
  bool empty() const { return size() == 0; }

  /// True when this ref borrows a StableChunk instead of owning its bytes.
  bool is_slice() const { return (bits_ & kSliceTag) != 0; }

  /// True when the text is packed into the ref itself (no heap buffer).
  bool is_inline() const { return (bits_ & kInlineTag) != 0; }

  /// Number of TextRefs sharing this rep (0 for the empty ref, 1 for an
  /// inline ref — its storage is itself).  Note: slices into one chunk are
  /// distinct reps; chunk sharing is visible via buffer_id().
  uint32_t use_count() const {
    if (is_inline()) return 1;
    const RefHeader* h = header();
    return h == nullptr ? 0 : h->refs.load(std::memory_order_relaxed);
  }

  /// Buffer identity — equal means physically shared storage.  For owned
  /// text this is the rep; for slices it is the underlying chunk, so every
  /// slice into one chunk shares one identity.  Null for the empty and
  /// inline reps, which hold no heap storage at all.
  const void* buffer_id() const {
    if (bits_ == 0 || is_inline()) return nullptr;
    return is_slice() ? static_cast<const void*>(slice()->chunk)
                      : static_cast<const void*>(owned());
  }

  /// Bytes of heap storage this ref pins: the text itself for owned reps,
  /// the whole chunk for slices (a slice keeps its entire chunk alive),
  /// nothing for inline reps (their bytes live inside the holder).  The
  /// BufferLedger charges this once per distinct buffer_id — the honest
  /// memory picture for aliased text.
  size_t payload_bytes() const {
    if (bits_ == 0 || is_inline()) return 0;
    return is_slice() ? slice()->chunk->capacity : owned()->size;
  }

  friend bool operator==(const TextRef& a, const TextRef& b) {
    return a.bits_ == b.bits_ || a.view() == b.view();
  }
  friend bool operator!=(const TextRef& a, const TextRef& b) {
    return !(a == b);
  }

 private:
  // Low-bits tag: heap reps come from operator new (>= 8-aligned), so an
  // owned pointer has low bits 000, a slice pointer is marked xx1, and the
  // inline rep claims bit 1 (x1x cannot occur in a pointer).  A slice
  // additionally carries bit 2 when its rep is embedded in the chunk
  // (101) rather than heap-allocated (001).  The inline word's low byte is
  // (size << 3) | kInlineTag; the 7 bytes above it are the chars
  // (little-endian: &bits_ + 1).
  static constexpr uintptr_t kSliceTag = 1;
  static constexpr uintptr_t kInlineTag = 2;
  static constexpr uintptr_t kEmbeddedTag = 4;
  static constexpr uintptr_t kTagMask = kSliceTag | kInlineTag | kEmbeddedTag;

  size_t inline_size() const { return (bits_ >> 3) & 7; }

  // Both reps begin with {refs, size} so refcount traffic is tag-blind.
  struct RefHeader {
    std::atomic<uint32_t> refs;
    uint32_t size;
  };
  struct OwnedRep {
    std::atomic<uint32_t> refs;
    uint32_t size;
    // Followed in the same allocation by `size` chars and a NUL.
  };
  struct SliceRep {
    std::atomic<uint32_t> refs;
    uint32_t size;
    const char* data;        // into chunk storage
    StableChunk::Rep* chunk;  // one chunk reference held
  };

  explicit TextRef(OwnedRep* rep) : bits_(reinterpret_cast<uintptr_t>(rep)) {}
  explicit TextRef(SliceRep* rep)
      : bits_(reinterpret_cast<uintptr_t>(rep) | kSliceTag) {}

  RefHeader* header() const {
    if (is_inline()) return nullptr;
    return reinterpret_cast<RefHeader*>(bits_ & ~kTagMask);
  }
  OwnedRep* owned() const { return reinterpret_cast<OwnedRep*>(bits_); }
  SliceRep* slice() const {
    return reinterpret_cast<SliceRep*>(bits_ & ~kTagMask);
  }

  void Release() {
    RefHeader* h = header();
    if (h != nullptr &&
        h->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (is_slice()) {
        SliceRep* s = slice();
        StableChunk::Rep* chunk = s->chunk;
        s->~SliceRep();
        // An embedded rep's storage belongs to the chunk allocation; only
        // a heap rep is freed here.
        if ((bits_ & kEmbeddedTag) == 0) ::operator delete(s);
        StableChunk::Release(chunk);
      } else {
        OwnedRep* o = owned();
        o->~OwnedRep();
        ::operator delete(o);
      }
    }
    bits_ = 0;
  }

  uintptr_t bits_ = 0;

 public:
  /// Storage an embedded slice rep needs (the tokenizer's arena carve
  /// size); always a multiple of 8.
  static constexpr size_t kSliceRepBytes = sizeof(SliceRep);
};

inline TextRef TextRef::Copy(std::string_view chars) {
  return Copy2(chars, std::string_view());
}

inline TextRef TextRef::Copy2(std::string_view a, std::string_view b) {
  size_t total = a.size() + b.size();
  if (total == 0) return TextRef();
  if (kInlineEnabled && total <= kInlineBytes) {
    TextRef t;
    t.bits_ = (static_cast<uintptr_t>(total) << 3) | kInlineTag;
    char* chars = reinterpret_cast<char*>(&t.bits_) + 1;
    if (!a.empty()) std::memcpy(chars, a.data(), a.size());
    if (!b.empty()) std::memcpy(chars + a.size(), b.data(), b.size());
    return t;
  }
  void* mem = ::operator new(sizeof(OwnedRep) + total + 1);
  OwnedRep* rep = new (mem)
      OwnedRep{std::atomic<uint32_t>(1), static_cast<uint32_t>(total)};
  char* data = reinterpret_cast<char*>(mem) + sizeof(OwnedRep);
  if (!a.empty()) std::memcpy(data, a.data(), a.size());
  if (!b.empty()) std::memcpy(data + a.size(), b.data(), b.size());
  data[total] = '\0';
  return TextRef(rep);
}

inline TextRef TextRef::Slice(const StableChunk& chunk, const char* data,
                              size_t size) {
  if (size == 0) return TextRef();
  XFLUX_CHECK(chunk.valid() && data >= chunk.data() &&
              data + size <= chunk.data() + chunk.capacity());
  void* mem = ::operator new(sizeof(SliceRep));
  SliceRep* rep = new (mem) SliceRep{std::atomic<uint32_t>(1),
                                     static_cast<uint32_t>(size), data,
                                     chunk.rep_};
  StableChunk::AddRef(chunk.rep_);
  return TextRef(rep);
}

inline TextRef TextRef::EmbeddedSlice(const StableChunk& chunk,
                                      void* rep_storage, const char* data,
                                      size_t size) {
  if (size == 0) return TextRef();
  XFLUX_CHECK(chunk.valid() && data >= chunk.data() &&
              data + size <= chunk.data() + chunk.capacity());
  // The rep must live in storage that dies with the chunk: the data region
  // of an owned chunk, or the sidecar arena of an adopted one.
  const char* storage = static_cast<const char*>(rep_storage);
  const char* sidecar =
      reinterpret_cast<const char*>(chunk.rep_) + sizeof(StableChunk::Rep);
  XFLUX_CHECK(reinterpret_cast<uintptr_t>(rep_storage) % 8 == 0 &&
              ((storage >= chunk.data() &&
                storage + sizeof(SliceRep) <=
                    chunk.data() + chunk.capacity()) ||
               (storage >= sidecar &&
                storage + sizeof(SliceRep) <= sidecar + chunk.rep_->sidecar)));
  SliceRep* rep = new (rep_storage) SliceRep{std::atomic<uint32_t>(1),
                                             static_cast<uint32_t>(size),
                                             data, chunk.rep_};
  StableChunk::AddRef(chunk.rep_);
  TextRef t;
  t.bits_ = reinterpret_cast<uintptr_t>(rep) | kSliceTag | kEmbeddedTag;
  return t;
}

/// strtod over a non-NUL-terminated view: skips leading XML whitespace and
/// an optional '+', parses the longest numeric prefix.  Returns true when
/// any characters were consumed (the AvgOp "was this a number" test).
bool ParseLeadingDouble(std::string_view text, double* value);

}  // namespace xflux

#endif  // XFLUX_UTIL_TEXT_REF_H_
