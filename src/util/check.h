// Always-on invariant traps.
//
// `assert` compiles out under NDEBUG, which turns "impossible" branches into
// undefined behavior exactly in the builds that face hostile input.
// XFLUX_CHECK is the always-on counterpart: on failure it prints the
// condition and location to stderr and aborts, in every build type.  Use it
// for invariants whose violation means memory is about to be corrupted
// (e.g. reading a StatusOr value that is not there); recoverable bad input
// belongs on the Status / PipelineContext::ReportError path instead.

#ifndef XFLUX_UTIL_CHECK_H_
#define XFLUX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace xflux {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* condition, const char* file,
                                     int line) {
  std::fprintf(stderr, "XFLUX_CHECK failed: %s at %s:%d\n", condition, file,
               line);
  std::abort();
}

}  // namespace internal
}  // namespace xflux

/// Aborts (in every build type) when `condition` is false.
#define XFLUX_CHECK(condition)                                         \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::xflux::internal::CheckFailed(#condition, __FILE__, __LINE__);  \
    }                                                                  \
  } while (false)

#endif  // XFLUX_UTIL_CHECK_H_
