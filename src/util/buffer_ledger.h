// Buffered-bytes accounting for shared payloads.
//
// With TextRef, ten buffered copies of one cD event hold one text buffer,
// so charging payload bytes per copy would overstate memory by 10x.  The
// ledger pins the accounting rule: a holder charges its own fixed item
// bytes (sizeof(Event)) per copy, and each distinct text buffer's bytes
// exactly once — on the first copy in, and credited back when the last
// copy leaves.  Stages that report StageStats::buffered_bytes for event
// queues route their OnBuffered/OnUnbuffered deltas through a ledger.

#ifndef XFLUX_UTIL_BUFFER_LEDGER_H_
#define XFLUX_UTIL_BUFFER_LEDGER_H_

#include <cstdint>
#include <unordered_map>

#include "util/text_ref.h"

namespace xflux {

/// Tracks the bytes held by one buffering site.  Add/Remove return the
/// byte delta to report to StageStats (payload bytes appear only in the
/// delta of the first add / last remove of each distinct buffer).
class BufferLedger {
 public:
  /// Accounts one buffered item of `item_bytes` plus its payload.  The
  /// payload charge is TextRef::payload_bytes() — for chunk slices that is
  /// the whole pinned chunk, charged once no matter how many slices into
  /// it are buffered (the honest memory picture for aliased text).
  int64_t Add(const TextRef& text, size_t item_bytes) {
    int64_t delta = static_cast<int64_t>(item_bytes);
    // Inline refs have no buffer: their bytes ride inside the item.
    const void* id = text.buffer_id();
    if (id != nullptr && ++holders_[id] == 1) {
      delta += static_cast<int64_t>(text.payload_bytes());
    }
    bytes_ += delta;
    return delta;
  }

  /// Reverses one Add of the same item.  Returns the (positive) bytes
  /// released.
  int64_t Remove(const TextRef& text, size_t item_bytes) {
    int64_t delta = static_cast<int64_t>(item_bytes);
    const void* id = text.buffer_id();
    if (id != nullptr) {
      auto it = holders_.find(id);
      if (it != holders_.end() && --it->second == 0) {
        holders_.erase(it);
        delta += static_cast<int64_t>(text.payload_bytes());
      }
    }
    bytes_ -= delta;
    return delta;
  }

  /// Drops everything; returns the bytes that were held.
  int64_t Clear() {
    int64_t held = bytes_;
    holders_.clear();
    bytes_ = 0;
    return held;
  }

  /// Bytes currently accounted (items + each distinct payload once).
  int64_t bytes() const { return bytes_; }

 private:
  // Buffer identity -> number of buffered items referencing it.
  std::unordered_map<const void*, int64_t> holders_;
  int64_t bytes_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_BUFFER_LEDGER_H_
