// Minimal error-handling vocabulary for xflux.
//
// The library does not use C++ exceptions (per the project style rules);
// fallible operations return a Status, and fallible value-producing
// operations return a StatusOr<T>.

#ifndef XFLUX_UTIL_STATUS_H_
#define XFLUX_UTIL_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace xflux {

/// Coarse error taxonomy; mirrors the usual database-library categories.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,    // caller passed something malformed
  kParseError = 2,         // malformed XML or query text
  kNotSupported = 3,       // feature outside the implemented subset
  kInternal = 4,           // invariant violation inside the library
  kProtocolViolation = 5,  // stream breaks WF_i / update-bracket discipline
  kResourceExhausted = 6,  // a configured ResourceLimits bound was exceeded
};

/// Returns the canonical human-readable name of a status code.
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
///
/// Statuses are cheap to copy when OK (empty message) and are intended to be
/// checked at every call site; ignoring one is a bug.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ProtocolViolation(std::string m) {
    return Status(StatusCode::kProtocolViolation, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value or an error. `ok()` must be checked before `value()`.
template <typename T>
class StatusOr {
 public:
  /// Implicit from Status so `return Status::ParseError(...)` works.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  /// Implicit from T so `return value` works.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Reading the value of a non-OK StatusOr would hand out a default-
  // constructed T and silently drop the error; the guard must survive
  // Release builds, so it traps instead of assert-ing.
  const T& value() const& {
    XFLUX_CHECK(ok() && "StatusOr::value() on a non-OK result");
    return value_;
  }
  T& value() & {
    XFLUX_CHECK(ok() && "StatusOr::value() on a non-OK result");
    return value_;
  }
  T&& value() && {
    XFLUX_CHECK(ok() && "StatusOr::value() on a non-OK result");
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace xflux

/// Propagates a non-OK Status out of the current function.
#define XFLUX_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::xflux::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // XFLUX_UTIL_STATUS_H_
