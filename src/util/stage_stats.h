// Per-stage observability (the measurement substrate behind the paper's
// Table 2 columns, broken down by pipeline position).
//
// The shared Metrics instance answers "what did the whole pipeline cost";
// StageStats answers "which stage" — the question that matters for a
// Q3-style //*-heavy chain where one operator dominates.  Every Filter is
// bound to one StageStats record in the pipeline's StatsRegistry when it is
// added; the counters only advance while the context's instrumentation
// switch is on, so the uninstrumented hot path pays a single branch.

#ifndef XFLUX_UTIL_STAGE_STATS_H_
#define XFLUX_UTIL_STAGE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xflux {

/// Counters and gauges for one pipeline stage.  All fields are mutated by
/// the owning Filter only while instrumentation is enabled.
struct StageStats {
  std::string name;  ///< operator name ("child::author", "clone 0->1", ...)
  int index = 0;     ///< position in the pipeline, 0 = closest to the source

  // Events entering the stage (Filter::Accept), split as in the paper:
  // simple stream events vs update events.
  uint64_t in_simple = 0;
  uint64_t in_update = 0;
  // Events the stage emitted downstream (Filter::Emit), same split.
  uint64_t out_simple = 0;
  uint64_t out_update = 0;
  // adjust() applications triggered by retroactive updates at this stage.
  uint64_t adjust_calls = 0;
  // Live per-region state copies kept by this stage's adjustment wrapper.
  int64_t live_states = 0;
  int64_t max_live_states = 0;
  // Copy-on-write snapshot accounting (util/cow.h): shares are O(1)
  // logical copies, clones are the deep copies Mutable() actually made.
  uint64_t state_shares = 0;
  uint64_t state_clones = 0;
  // Auxiliary bookkeeping entries held by the stage outside the state
  // plane (e.g. the sorter's update-region rename map), with the map's
  // high-water mark — the boundedness gauge for long streams.
  int64_t aux_entries = 0;
  int64_t max_aux_entries = 0;
  // Operator-internal buffering (suspension queues), event payload bytes.
  int64_t buffered_events = 0;
  int64_t buffered_bytes = 0;
  int64_t max_buffered_events = 0;
  int64_t max_buffered_bytes = 0;
  // Wall time inside Dispatch (downstream stages included) and the portion
  // of it spent inside downstream Accept calls, via steady_clock.
  uint64_t wall_ns = 0;
  uint64_t downstream_ns = 0;
  // Parallel execution only: high-water occupancy of the SPSC queue feeding
  // this stage, recorded by the executor at drain time for segment-head
  // stages (0 for stages fed by direct dispatch, and always 0 in serial
  // runs).  Unlike the other fields this is filled in even when
  // instrumentation is off — it costs nothing on the event path.
  uint64_t queue_depth_hwm = 0;

  uint64_t events_in() const { return in_simple + in_update; }
  uint64_t events_out() const { return out_simple + out_update; }

  /// Time attributable to this stage alone: Dispatch time minus the time
  /// its emissions spent in downstream stages.
  uint64_t self_ns() const {
    return wall_ns - std::min(wall_ns, downstream_ns);
  }

  void OnStateCreated() {
    ++live_states;
    max_live_states = std::max(max_live_states, live_states);
  }
  void OnStateDropped() { --live_states; }
  void OnAuxEntries(int64_t delta) {
    aux_entries += delta;
    max_aux_entries = std::max(max_aux_entries, aux_entries);
  }
  /// Fraction of logical state copies served without a deep clone, in
  /// [0, 1]; 0 when the stage never snapshotted at all.
  double ShareRatio() const {
    uint64_t total = state_shares + state_clones;
    return total == 0 ? 0.0 : static_cast<double>(state_shares) / total;
  }
  void OnBuffered(int64_t events, int64_t bytes) {
    buffered_events += events;
    buffered_bytes += bytes;
    max_buffered_events = std::max(max_buffered_events, buffered_events);
    max_buffered_bytes = std::max(max_buffered_bytes, buffered_bytes);
  }
  void OnUnbuffered(int64_t events, int64_t bytes) {
    buffered_events -= events;
    buffered_bytes -= bytes;
  }

  /// Rough resident footprint of this stage, mirroring
  /// Metrics::ApproxStateBytes (per-state copies plus buffered payload).
  int64_t ApproxStateBytes() const {
    constexpr int64_t kPerStateBytes = 96;
    return max_live_states * kPerStateBytes + max_buffered_bytes;
  }

  /// Zeroes every counter; name and index survive.
  void Reset();

  /// Folds another record into this one: counters add, gauges keep the
  /// current sum and the max of the high-water marks.  The unit of the
  /// QueryServer's two-level rollup (N same-named suffix stages → one
  /// aggregate row).  Name and index are untouched.
  void MergeFrom(const StageStats& other);

  /// One JSON object (see EXPERIMENTS.md for the schema).
  std::string ToJson() const;
};

/// Owns the StageStats records of one pipeline, in stage order.  Records
/// are registered at Pipeline::Add time and never move (stable pointers),
/// so Filters can cache them.
class StatsRegistry {
 public:
  /// Creates the record for the next stage; the index is assigned in
  /// registration order.
  StageStats* Register(std::string name);

  size_t size() const { return stages_.size(); }
  const StageStats& stage(size_t i) const { return *stages_[i]; }
  StageStats& stage(size_t i) { return *stages_[i]; }

  /// Zeroes all records (e.g. between bench repetitions).
  void Reset();

  /// JSON array of the per-stage objects, in pipeline order.
  std::string ToJson() const;

  /// Human-readable aligned table (name, in/out events, adjust calls, µs,
  /// approx bytes) — what `xflux_inspect` prints.
  std::string ToTable() const;

  /// Copies every record of `other` into this registry under
  /// `prefix + name`.  With `merge_same_name`, records whose prefixed name
  /// already exists here are folded in via StageStats::MergeFrom instead
  /// of added — how the QueryServer aggregates N structurally identical
  /// suffix pipelines into one row set.
  void Absorb(const StatsRegistry& other, const std::string& prefix,
              bool merge_same_name = false);

 private:
  std::vector<std::unique_ptr<StageStats>> stages_;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_STAGE_STATS_H_
