#include "util/symbol_table.h"

#include "util/check.h"

namespace xflux {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolTable::SymbolTable() {
  Intern(std::string_view());  // entry 0 is the empty spelling
}

Symbol SymbolTable::Intern(std::string_view spelling) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(spelling);
  if (it != index_.end()) return Symbol(it->second);
  uint32_t value = published_.load(std::memory_order_relaxed);
  XFLUX_CHECK(value < kMaxBlocks * kBlockSize);
  std::atomic<Entry*>& slot = blocks_[value >> kBlockBits];
  Entry* block = slot.load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Entry[kBlockSize];
    slot.store(block, std::memory_order_relaxed);
  }
  Entry& e = block[value & (kBlockSize - 1)];
  e.spelling = std::string(spelling);
  e.attribute = !spelling.empty() && spelling[0] == '@';
  index_.emplace(std::string_view(e.spelling), value);
  // Publish only after the entry is fully built: readers that pass the
  // published_ bound may touch the entry without synchronizing further.
  published_.store(value + 1, std::memory_order_release);
  return Symbol(value);
}

std::string_view SymbolTable::Spelling(Symbol symbol) const {
  const Entry* e = Find(symbol);
  return e == nullptr ? std::string_view() : std::string_view(e->spelling);
}

bool SymbolTable::IsAttribute(Symbol symbol) const {
  const Entry* e = Find(symbol);
  return e != nullptr && e->attribute;
}

size_t SymbolTable::size() const {
  return published_.load(std::memory_order_acquire);
}

}  // namespace xflux
