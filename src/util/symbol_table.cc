#include "util/symbol_table.h"

namespace xflux {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolTable::SymbolTable() {
  entries_.push_back(Entry{std::string(), false});
  index_.emplace(std::string_view(entries_.back().spelling), 0);
}

Symbol SymbolTable::Intern(std::string_view spelling) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(spelling);
  if (it != index_.end()) return Symbol(it->second);
  uint32_t value = static_cast<uint32_t>(entries_.size());
  entries_.push_back(
      Entry{std::string(spelling), !spelling.empty() && spelling[0] == '@'});
  index_.emplace(std::string_view(entries_.back().spelling), value);
  return Symbol(value);
}

std::string_view SymbolTable::Spelling(Symbol symbol) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (symbol.value() >= entries_.size()) return {};
  return entries_[symbol.value()].spelling;
}

bool SymbolTable::IsAttribute(Symbol symbol) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (symbol.value() >= entries_.size()) return false;
  return entries_[symbol.value()].attribute;
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace xflux
