// Bounded single-producer / single-consumer work queue.
//
// The unit of transfer in the parallel pipeline executor is a whole
// EventBatch (a parser-sized run of ~64 events), so the queue optimizes for
// clarity over lock-freedom: one mutex round-trip per *batch* amortizes to a
// fraction of a nanosecond per event, and the condition variables give exact
// blocking semantics for backpressure (producer stalls while the ring is
// full) and shutdown (consumer drains whatever is left after Close and then
// sees end-of-stream).  The ring never reallocates after construction, so a
// full queue is the only thing that can slow a producer down — that bound is
// the "bounded buffers" half of the Koch-style pipeline scheduling argument.

#ifndef XFLUX_UTIL_SPSC_QUEUE_H_
#define XFLUX_UTIL_SPSC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace xflux {

/// See file comment.  Exactly one producer thread calls Push and exactly one
/// consumer thread calls Pop; Close may be called from the producer (normal
/// end-of-stream) or a coordinator.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) : ring_(capacity < 1 ? 1 : capacity) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Enqueues `value`, blocking while the ring is full (backpressure).
  /// Returns false — discarding `value` — if the queue was closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [&] { return size_ < ring_.size() || closed_; });
    if (closed_) return false;
    ring_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % ring_.size();
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
    can_pop_.notify_one();
    return true;
  }

  /// Dequeues into `*out`, blocking while the ring is empty.  Returns false
  /// only once the queue is closed *and* fully drained — the consumer's
  /// end-of-stream signal.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    can_push_.notify_one();
    return true;
  }

  /// Like Pop, but gives up after `timeout_ms` milliseconds so drain loops
  /// can enforce deadlines instead of blocking forever (the server's delta
  /// queues and any consumer that must also watch a clock).  Returns true
  /// with an element, or false with `*timed_out` distinguishing "deadline
  /// hit while the queue stayed empty" (true) from "closed and drained"
  /// (false).
  bool PopWithTimeout(T* out, int64_t timeout_ms, bool* timed_out = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    bool ready = can_pop_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                                   [&] { return size_ > 0 || closed_; });
    if (size_ == 0) {
      if (timed_out != nullptr) *timed_out = !ready;
      return false;
    }
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    can_push_.notify_one();
    if (timed_out != nullptr) *timed_out = false;
    return true;
  }

  /// Marks end-of-stream: blocked producers give up, the consumer drains
  /// what is buffered and then Pop returns false.  Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    can_push_.notify_all();
    can_pop_.notify_all();
  }

  size_t capacity() const { return ring_.size(); }

  /// Highest occupancy ever observed — the per-queue "depth high-water mark"
  /// reported by xflux_inspect, showing where the pipeline actually queues.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t size_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_SPSC_QUEUE_H_
