#include "util/metrics.h"

#include <cstdio>

namespace xflux {

std::string Metrics::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "calls=%llu emitted=%llu adjusts=%llu max_states=%lld "
                "max_buffered_events=%lld max_mem=%lldB",
                static_cast<unsigned long long>(transformer_calls_),
                static_cast<unsigned long long>(events_emitted_),
                static_cast<unsigned long long>(adjust_calls_),
                static_cast<long long>(max_live_states_),
                static_cast<long long>(max_buffered_events_),
                static_cast<long long>(MaxApproxStateBytes()));
  return buf;
}

}  // namespace xflux
