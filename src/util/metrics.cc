#include "util/metrics.h"

#include <cstdio>

#include "util/json.h"

namespace xflux {

std::string Metrics::ToString() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "calls=%llu emitted=%llu adjusts=%llu max_states=%lld "
                "state_clones=%llu state_shares=%llu "
                "max_buffered_events=%lld max_mem=%lldB",
                static_cast<unsigned long long>(transformer_calls_),
                static_cast<unsigned long long>(events_emitted_),
                static_cast<unsigned long long>(adjust_calls_),
                static_cast<long long>(max_live_states_),
                static_cast<unsigned long long>(state_clones_),
                static_cast<unsigned long long>(state_shares_),
                static_cast<long long>(max_buffered_events_),
                static_cast<long long>(MaxApproxStateBytes()));
  std::string out = buf;
  if (guard_violations_ + stage_recoveries_ > 0) {
    std::snprintf(
        buf, sizeof(buf),
        " guard_violations=%llu guard_dropped_events=%llu "
        "guard_dropped_regions=%llu guard_resyncs=%llu stage_recoveries=%llu",
        static_cast<unsigned long long>(guard_violations_),
        static_cast<unsigned long long>(guard_dropped_events_),
        static_cast<unsigned long long>(guard_dropped_regions_),
        static_cast<unsigned long long>(guard_resyncs_),
        static_cast<unsigned long long>(stage_recoveries_));
    out += buf;
  }
  if (admission_rejects_ + shed_tier_[0] + shed_tier_[1] + shed_tier_[2] +
          session_timeouts_ >
      0) {
    std::snprintf(buf, sizeof(buf),
                  " admission_rejects=%llu shed_tier1=%llu shed_tier2=%llu "
                  "shed_tier3=%llu session_timeouts=%llu",
                  static_cast<unsigned long long>(admission_rejects_),
                  static_cast<unsigned long long>(shed_tier_[0]),
                  static_cast<unsigned long long>(shed_tier_[1]),
                  static_cast<unsigned long long>(shed_tier_[2]),
                  static_cast<unsigned long long>(session_timeouts_));
    out += buf;
  }
  return out;
}

std::string Metrics::ToJson() const {
  JsonWriter w = JsonWriter::Object();
  w.Field("transformer_calls", transformer_calls_);
  w.Field("events_emitted", events_emitted_);
  w.Field("adjust_calls", adjust_calls_);
  w.Field("live_states", live_states_);
  w.Field("max_live_states", max_live_states_);
  w.Field("state_shares", state_shares_);
  w.Field("state_clones", state_clones_);
  w.Field("buffered_events", buffered_events_);
  w.Field("max_buffered_events", max_buffered_events_);
  w.Field("max_buffered_bytes", max_buffered_bytes_);
  w.Field("display_regions", display_regions_);
  w.Field("max_display_regions", max_display_regions_);
  w.Field("approx_state_bytes", ApproxStateBytes());
  w.Field("max_approx_state_bytes", MaxApproxStateBytes());
  w.Field("guard_violations", guard_violations_);
  w.Field("guard_dropped_events", guard_dropped_events_);
  w.Field("guard_dropped_regions", guard_dropped_regions_);
  w.Field("guard_resyncs", guard_resyncs_);
  w.Field("stage_recoveries", stage_recoveries_);
  w.Field("admission_rejects", admission_rejects_);
  w.Field("shed_tier1", shed_tier_[0]);
  w.Field("shed_tier2", shed_tier_[1]);
  w.Field("shed_tier3", shed_tier_[2]);
  w.Field("session_timeouts", session_timeouts_);
  return w.Close();
}

}  // namespace xflux
