// Dense total-order keys ("fractional indexing").
//
// Section IV of the paper assigns each update region a timestamp
// order[id] computed as the real-number midpoint between two existing
// timestamps.  Naive floating point runs out of precision after ~50 nested
// insertions, so we implement the same dense order with unbounded byte
// strings: keys compare lexicographically, and Between(lo, hi) always
// produces a key strictly between its arguments, growing by at most one
// byte per midpoint in the common case.

#ifndef XFLUX_UTIL_ORDER_KEY_H_
#define XFLUX_UTIL_ORDER_KEY_H_

#include <compare>
#include <string>

namespace xflux {

/// A point in a dense total order.
///
/// `Min()` precedes every generated key and `Max()` follows every key
/// (including all keys generated against it); between any two distinct keys
/// a new key can always be generated with `Between`.  Generated keys never
/// end in the byte 0x00, which is what guarantees density.
class OrderKey {
 public:
  /// Default-constructs the minimum key.
  OrderKey() = default;

  /// The key preceding all generated keys (the paper's order 0).
  static OrderKey Min() { return OrderKey(); }

  /// The key following all generated keys (the paper's order 1).  The base
  /// stream is pinned here so that every retroactive update adjusts the
  /// live tail state.
  static OrderKey Max() {
    OrderKey k;
    k.is_max_ = true;
    return k;
  }

  /// Returns a key strictly between `lo` and `hi`.  Requires `lo < hi`.
  static OrderKey Between(const OrderKey& lo, const OrderKey& hi);

  bool is_max() const { return is_max_; }
  bool is_min() const { return !is_max_ && digits_.empty(); }

  friend bool operator==(const OrderKey& a, const OrderKey& b) {
    return a.is_max_ == b.is_max_ && a.digits_ == b.digits_;
  }
  friend std::strong_ordering operator<=>(const OrderKey& a,
                                          const OrderKey& b) {
    if (a.is_max_ != b.is_max_) {
      return a.is_max_ ? std::strong_ordering::greater
                       : std::strong_ordering::less;
    }
    return a.digits_.compare(b.digits_) <=> 0;
  }

  /// Hex rendering for debugging and test failure messages.
  std::string ToString() const;

 private:
  bool is_max_ = false;
  std::string digits_;  // big-endian fractional bytes; lexicographic order
};

}  // namespace xflux

#endif  // XFLUX_UTIL_ORDER_KEY_H_
