// Interned element tag names.
//
// Every sE/eE event carries its tag as a Symbol — a small integer handle
// into the process-wide SymbolTable — so tag comparison in the path steps
// is an integer compare and Event needs no string member for tags.
// Attributes keep the tokenizer's convention of a '@'-prefixed spelling
// ("@id"); IsAttribute() tests that prefix without touching the string on
// the hot path's behalf.
//
// The table is append-only: spellings are never removed, handles are never
// reused, and the spelling storage is stable (a deque of strings), so a
// string_view returned by Spelling() stays valid for the process lifetime.

#ifndef XFLUX_UTIL_SYMBOL_TABLE_H_
#define XFLUX_UTIL_SYMBOL_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xflux {

/// An interned tag name.  Value 0 is the empty spelling "" (the default
/// for events without a tag).  Equality of symbols is equality of
/// spellings — the table never hands out two handles for one spelling.
class Symbol {
 public:
  constexpr Symbol() = default;

  uint32_t value() const { return value_; }
  bool empty() const { return value_ == 0; }

  friend constexpr bool operator==(Symbol a, Symbol b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Symbol a, Symbol b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Symbol a, Symbol b) {
    return a.value_ < b.value_;
  }

 private:
  friend class SymbolTable;
  explicit constexpr Symbol(uint32_t value) : value_(value) {}

  uint32_t value_ = 0;
};

/// The process-wide intern table.  Intern() is thread-safe (writers
/// serialize on a mutex); Spelling(), IsAttribute(), and size() are
/// genuinely lock-free reads of immutable entries — they sit on the
/// tokenizer's per-element path.
class SymbolTable {
 public:
  static SymbolTable& Global();

  /// Returns the (unique) handle for `spelling`, interning it on first use.
  Symbol Intern(std::string_view spelling);

  /// The spelling behind a handle; valid for the process lifetime.
  std::string_view Spelling(Symbol symbol) const;

  /// True when the spelling starts with '@' — the tokenizer's encoding of
  /// attributes as child elements.
  bool IsAttribute(Symbol symbol) const;

  /// Number of interned spellings (including the implicit empty one).
  size_t size() const;

 private:
  SymbolTable();

  struct Entry {
    std::string spelling;
    bool attribute = false;
  };

  // Fixed-shape block storage: entry addresses never move, and readers
  // reach entry i through blocks_[i >> kBlockBits] without any lock.  A
  // writer installs the block and fills the entry BEFORE publishing i+1
  // with a release store; readers that observe i < published_ (acquire)
  // therefore see the entry fully constructed.  Capacity is
  // kMaxBlocks * kBlockSize distinct spellings (4M) — a hard process
  // limit, checked in Intern.
  static constexpr size_t kBlockBits = 10;
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;
  static constexpr size_t kMaxBlocks = 4096;

  const Entry* Find(Symbol symbol) const {
    uint32_t v = symbol.value();
    if (v >= published_.load(std::memory_order_acquire)) return nullptr;
    return &blocks_[v >> kBlockBits].load(std::memory_order_relaxed)
                                    [v & (kBlockSize - 1)];
  }

  mutable std::mutex mutex_;  // serializes writers (Intern) only
  std::array<std::atomic<Entry*>, kMaxBlocks> blocks_{};
  std::atomic<uint32_t> published_{0};
  // Spelling -> handle, for Intern's dedup; views point into entry
  // storage.  Guarded by mutex_.
  std::unordered_map<std::string_view, uint32_t> index_;
};

/// Shorthands for the global table.
inline Symbol InternTag(std::string_view spelling) {
  return SymbolTable::Global().Intern(spelling);
}
inline std::string_view TagSpelling(Symbol symbol) {
  return SymbolTable::Global().Spelling(symbol);
}

}  // namespace xflux

#endif  // XFLUX_UTIL_SYMBOL_TABLE_H_
