#include "util/stage_stats.h"

#include <cstdio>

#include "util/json.h"

namespace xflux {

void StageStats::Reset() {
  std::string saved_name = std::move(name);
  int saved_index = index;
  *this = StageStats();
  name = std::move(saved_name);
  index = saved_index;
}

void StageStats::MergeFrom(const StageStats& other) {
  in_simple += other.in_simple;
  in_update += other.in_update;
  out_simple += other.out_simple;
  out_update += other.out_update;
  adjust_calls += other.adjust_calls;
  live_states += other.live_states;
  max_live_states = std::max(max_live_states, other.max_live_states);
  state_shares += other.state_shares;
  state_clones += other.state_clones;
  aux_entries += other.aux_entries;
  max_aux_entries = std::max(max_aux_entries, other.max_aux_entries);
  buffered_events += other.buffered_events;
  buffered_bytes += other.buffered_bytes;
  max_buffered_events =
      std::max(max_buffered_events, other.max_buffered_events);
  max_buffered_bytes = std::max(max_buffered_bytes, other.max_buffered_bytes);
  wall_ns += other.wall_ns;
  downstream_ns += other.downstream_ns;
  queue_depth_hwm = std::max(queue_depth_hwm, other.queue_depth_hwm);
}

std::string StageStats::ToJson() const {
  JsonWriter w = JsonWriter::Object();
  w.Field("index", index);
  w.Field("name", name);
  w.Field("in_simple", in_simple);
  w.Field("in_update", in_update);
  w.Field("out_simple", out_simple);
  w.Field("out_update", out_update);
  w.Field("adjust_calls", adjust_calls);
  w.Field("max_live_states", max_live_states);
  w.Field("state_shares", state_shares);
  w.Field("state_clones", state_clones);
  w.Field("max_aux_entries", max_aux_entries);
  w.Field("max_buffered_events", max_buffered_events);
  w.Field("max_buffered_bytes", max_buffered_bytes);
  w.Field("wall_ns", wall_ns);
  w.Field("self_ns", self_ns());
  w.Field("queue_depth_hwm", queue_depth_hwm);
  w.Field("approx_bytes", ApproxStateBytes());
  return w.Close();
}

StageStats* StatsRegistry::Register(std::string name) {
  auto stats = std::make_unique<StageStats>();
  stats->name = std::move(name);
  stats->index = static_cast<int>(stages_.size());
  stages_.push_back(std::move(stats));
  return stages_.back().get();
}

void StatsRegistry::Reset() {
  for (auto& s : stages_) s->Reset();
}

std::string StatsRegistry::ToJson() const {
  JsonWriter w = JsonWriter::Array();
  for (const auto& s : stages_) w.RawElement(s->ToJson());
  return w.Close();
}

void StatsRegistry::Absorb(const StatsRegistry& other,
                           const std::string& prefix, bool merge_same_name) {
  for (const auto& s : other.stages_) {
    std::string name = prefix + s->name;
    StageStats* target = nullptr;
    if (merge_same_name) {
      for (auto& mine : stages_) {
        if (mine->name == name) {
          target = mine.get();
          break;
        }
      }
    }
    if (target == nullptr) {
      target = Register(std::move(name));
    }
    target->MergeFrom(*s);
  }
}

std::string StatsRegistry::ToTable() const {
  std::string out =
      "  # stage                               in(s/u)          out(s/u)"
      "   adjusts   states       us    ~bytes  qhwm  shr%   aux\n";
  char line[224];
  for (const auto& s : stages_) {
    char share[8];
    if (s->state_shares + s->state_clones == 0) {
      std::snprintf(share, sizeof(share), "-");
    } else {
      std::snprintf(share, sizeof(share), "%.0f", s->ShareRatio() * 100.0);
    }
    std::snprintf(
        line, sizeof(line),
        "%3d %-28s %9llu/%-7llu %9llu/%-7llu %9llu %8lld %8.0f %9lld %5llu "
        "%5s %5lld\n",
        s->index, s->name.c_str(),
        static_cast<unsigned long long>(s->in_simple),
        static_cast<unsigned long long>(s->in_update),
        static_cast<unsigned long long>(s->out_simple),
        static_cast<unsigned long long>(s->out_update),
        static_cast<unsigned long long>(s->adjust_calls),
        static_cast<long long>(s->max_live_states),
        static_cast<double>(s->self_ns()) / 1e3,
        static_cast<long long>(s->ApproxStateBytes()),
        static_cast<unsigned long long>(s->queue_depth_hwm), share,
        static_cast<long long>(s->max_aux_entries));
    out += line;
  }
  return out;
}

}  // namespace xflux
