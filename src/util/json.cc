#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace xflux {

void JsonAppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  JsonAppendQuoted(&out, s);
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

void JsonWriter::Comma() {
  if (!first_) out_ += ',';
  first_ = false;
}

void JsonWriter::Key(std::string_view key) {
  Comma();
  JsonAppendQuoted(&out_, key);
  out_ += ':';
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  JsonAppendQuoted(&out_, value);
}

void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  out_ += JsonNumber(value);
}

void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonWriter::Field(std::string_view key, uint64_t value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
}

void JsonWriter::Raw(std::string_view key, std::string_view json) {
  Key(key);
  out_ += json;
}

void JsonWriter::Element(std::string_view value) {
  Comma();
  JsonAppendQuoted(&out_, value);
}

void JsonWriter::Element(double value) {
  Comma();
  out_ += JsonNumber(value);
}

void JsonWriter::Element(int64_t value) {
  Comma();
  out_ += std::to_string(value);
}

void JsonWriter::Element(uint64_t value) {
  Comma();
  out_ += std::to_string(value);
}

void JsonWriter::RawElement(std::string_view json) {
  Comma();
  out_ += json;
}

std::string JsonWriter::Close() {
  out_ += close_;
  return std::move(out_);
}

}  // namespace xflux
