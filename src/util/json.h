// Minimal JSON emission helpers (no third-party libraries).
//
// Back the observability exports: Metrics::ToJson, StatsRegistry::ToJson,
// and the BENCH_<name>.json trajectory files the bench binaries write.
// Emission only — nothing in the engine ever needs to parse JSON.

#ifndef XFLUX_UTIL_JSON_H_
#define XFLUX_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xflux {

/// Appends `s` as a JSON string literal (quotes and escapes included).
void JsonAppendQuoted(std::string* out, std::string_view s);

/// Returns `s` as a JSON string literal.
std::string JsonQuote(std::string_view s);

/// Renders a double as a JSON number (non-finite values become null, which
/// plain %g would not produce legally).
std::string JsonNumber(double value);

/// Append-only writer for one JSON object or array.  Values are emitted in
/// call order; nest by passing another writer's Close() result to Raw.
///
///   JsonWriter row = JsonWriter::Object();
///   row.Field("query", "Q1");
///   row.Field("seconds", 0.05);
///   row.Raw("stages", registry.ToJson());
///   std::string json = row.Close();
class JsonWriter {
 public:
  static JsonWriter Object() { return JsonWriter('{', '}'); }
  static JsonWriter Array() { return JsonWriter('[', ']'); }

  /// Object fields (assert-free: calling Field on an array is simply wrong).
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value) {
    Field(key, std::string_view(value));
  }
  void Field(std::string_view key, double value);
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, uint64_t value);
  void Field(std::string_view key, int value) {
    Field(key, static_cast<int64_t>(value));
  }
  void Field(std::string_view key, bool value);
  /// `json` must already be valid JSON (a nested object/array/number).
  void Raw(std::string_view key, std::string_view json);

  /// Array elements.
  void Element(std::string_view value);
  void Element(double value);
  void Element(int64_t value);
  void Element(uint64_t value);
  void RawElement(std::string_view json);

  /// Terminates and returns the document.  The writer is spent afterwards.
  std::string Close();

 private:
  JsonWriter(char open, char close) : close_(close) { out_ += open; }
  void Comma();
  void Key(std::string_view key);

  std::string out_;
  char close_;
  bool first_ = true;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_JSON_H_
