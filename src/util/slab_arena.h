// Pooled slab allocator for small fixed-size nodes.
//
// The region document holds one heap node per buffered item; on update-heavy
// streams that is one malloc/free per event plus pointer-chasing across the
// whole heap.  SlabArena carves nodes out of large contiguous slabs instead:
// allocation is a free-list pop (or a bump into the newest slab), and
// Destroy() pushes the slot back onto the free list for reuse — EraseRange
// on a replaced region immediately recycles its slots for the replacement
// content.  Slabs are never returned to the OS while the arena lives; the
// arena's footprint is the high-water mark of live nodes, which is exactly
// the document's buffering bound.
//
// Lifetime contract: Destroy() runs the node's destructor.  Slots still
// live when the arena itself is destroyed are reclaimed as raw memory
// *without* running destructors — fine for trivially-destructible types,
// otherwise the owner must Destroy() every live node first (RegionDocument
// walks its item list in its destructor for exactly this reason).

#ifndef XFLUX_UTIL_SLAB_ARENA_H_
#define XFLUX_UTIL_SLAB_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace xflux {

/// Fixed-size-node pool.  Not thread-safe; one arena per document.
template <typename T>
class SlabArena {
 public:
  /// Slabs default to ~64 KiB worth of slots: large enough to amortize the
  /// malloc, small enough that a near-empty document stays cheap.
  static constexpr size_t kDefaultSlabBytes = 64 * 1024;

  explicit SlabArena(size_t nodes_per_slab = kDefaultSlabBytes / sizeof(T))
      : nodes_per_slab_(nodes_per_slab < 8 ? 8 : nodes_per_slab) {}

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  template <typename... Args>
  T* Create(Args&&... args) {
    if (free_ == nullptr) AddSlab();
    Slot* slot = free_;
    free_ = slot->next_free;
    ++live_;
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  void Destroy(T* node) {
    node->~T();
    Slot* slot = reinterpret_cast<Slot*>(node);
    slot->next_free = free_;
    free_ = slot;
    --live_;
  }

  /// Nodes currently alive.
  size_t live_nodes() const { return live_; }
  /// Total slots carved out so far (the arena's high-water capacity).
  size_t capacity_nodes() const { return slabs_.size() * nodes_per_slab_; }
  size_t slab_count() const { return slabs_.size(); }
  /// Bytes held by the slabs (footprint, independent of live_nodes).
  size_t arena_bytes() const { return capacity_nodes() * sizeof(Slot); }
  /// Live fraction of the carved capacity, in [0, 1]; 0 when empty.
  double occupancy() const {
    size_t cap = capacity_nodes();
    return cap == 0 ? 0.0 : static_cast<double>(live_) / cap;
  }

 private:
  union Slot {
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  void AddSlab() {
    slabs_.push_back(std::make_unique<Slot[]>(nodes_per_slab_));
    Slot* slab = slabs_.back().get();
    // Thread the new slots onto the free list back-to-front so the first
    // allocations walk the slab in address order.
    for (size_t i = nodes_per_slab_; i > 0; --i) {
      slab[i - 1].next_free = free_;
      free_ = &slab[i - 1];
    }
  }

  size_t nodes_per_slab_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  Slot* free_ = nullptr;
  size_t live_ = 0;
};

}  // namespace xflux

#endif  // XFLUX_UTIL_SLAB_ARENA_H_
