#include "testing/traffic_gen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "serve/client.h"
#include "serve/frame.h"
#include "testing/fault_injector.h"
#include "util/prng.h"

namespace xflux::serve {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Classifies a finished client run into the report buckets.
void RecordEnding(const Status& ending, const ServeClient* client,
                  TrafficReport* report) {
  if (ending.ok()) {
    ++report->completed;
  } else if (client != nullptr && client->last_shed_tier() >= 3) {
    ++report->evicted;
  } else if (ending.code() == StatusCode::kInternal) {
    ++report->transport_errors;
  } else if (ending.message().rfind("timed out", 0) == 0) {
    ++report->transport_errors;
  } else {
    ++report->errored;  // a structured in-protocol error: containment worked
  }
}

void RunHonest(const TrafficOptions& options, uint64_t seed, bool slow,
               TrafficReport* report) {
  ++report->attempted;
  auto client = ServeClient::Connect(options.endpoint);
  if (!client.ok()) {
    ++report->transport_errors;
    return;
  }
  ServeClient* c = client.value().get();
  Status opened = c->Open(options.query, "guard=drop\npriority=1");
  if (!opened.ok()) {
    if (opened.code() == StatusCode::kResourceExhausted &&
        c->rejected_retry_after_ms() > 0) {
      ++report->rejected;
    } else {
      RecordEnding(opened, c, report);
    }
    return;
  }
  ++report->admitted;
  std::string doc = MakeBookDocument(seed, options.doc_bytes);
  Status run = c->Subscribe();
  int64_t last_feed_us = NowUs();
  uint64_t seen_deltas = 0;
  for (size_t off = 0; run.ok() && off < doc.size();
       off += options.chunk_bytes) {
    std::string_view chunk(doc.data() + off,
                           std::min(options.chunk_bytes, doc.size() - off));
    if (slow) {
      // The slow consumer: keeps feeding, never reads, lets the server's
      // outbound queue absorb (and bound) the lag.
      run = c->SendRaw(EncodeFrame(FrameType::kFeedXml, chunk));
      SleepMs(options.slow_delay_ms);
      continue;
    }
    last_feed_us = NowUs();
    run = c->FeedXml(chunk);
    // Give the push path a chance to deliver, and time what arrives.
    auto frame = c->ReadFrame(2);
    if (frame.ok() && frame.value().type == FrameType::kDelta) {
      report->delta_latency_ms.push_back(
          static_cast<double>(NowUs() - last_feed_us) / 1000.0);
    }
  }
  if (run.ok()) run = c->SendFinish();
  // Even when a send raced the server's teardown, a structured ending may
  // already be buffered — the drain below surfaces it either way.
  // Drain to the final status, timing any remaining pushed deltas.
  int64_t deadline_us =
      NowUs() + static_cast<int64_t>(options.finish_timeout_ms) * 1000;
  Status ending;
  for (;;) {
    int64_t remaining_ms = (deadline_us - NowUs()) / 1000;
    if (remaining_ms <= 0) {
      ending = Status::ResourceExhausted("timed out waiting for FINISHED");
      break;
    }
    auto frame = c->ReadFrame(static_cast<int>(remaining_ms));
    if (!frame.ok()) {
      ending = frame.status();
      break;
    }
    if (frame.value().type == FrameType::kDelta && !slow) {
      report->delta_latency_ms.push_back(
          static_cast<double>(NowUs() - last_feed_us) / 1000.0);
    }
    if (frame.value().type == FrameType::kFinished) {
      uint32_t code = 0;
      ReadU32(frame.value().payload, 0, &code);
      ending = code == 0 ? Status::OK()
                         : Status(static_cast<StatusCode>(code), "finished");
      break;
    }
    if (frame.value().type == FrameType::kError) {
      uint32_t code = 0;
      ReadU32(frame.value().payload, 0, &code);
      ending = Status(static_cast<StatusCode>(code), "error frame");
      break;
    }
    if (frame.value().type == FrameType::kShedNotice &&
        c->last_shed_tier() >= 3) {
      ending = Status::ResourceExhausted("evicted");
      break;
    }
  }
  seen_deltas = c->deltas_received();
  report->deltas += seen_deltas;
  RecordEnding(ending, c, report);
}

void RunBursty(const TrafficOptions& options, uint64_t seed,
               TrafficReport* report) {
  ++report->attempted;
  auto client = ServeClient::Connect(options.endpoint);
  if (!client.ok()) {
    ++report->transport_errors;
    return;
  }
  ServeClient* c = client.value().get();
  Status opened = c->Open(options.query, "guard=drop\npriority=1");
  if (!opened.ok()) {
    if (opened.code() == StatusCode::kResourceExhausted &&
        c->rejected_retry_after_ms() > 0) {
      ++report->rejected;
    } else {
      RecordEnding(opened, c, report);
    }
    return;
  }
  ++report->admitted;
  std::string doc = MakeBookDocument(seed, options.doc_bytes);
  Status run = c->FeedXml(doc);
  if (run.ok()) run = c->SendFinish();
  Status ending = c->WaitFinished(options.finish_timeout_ms);
  report->deltas += c->deltas_received();
  RecordEnding(ending, c, report);
}

void RunHostile(const TrafficOptions& options, uint64_t seed,
                TrafficReport* report) {
  ++report->attempted;
  auto client = ServeClient::Connect(options.endpoint);
  if (!client.ok()) {
    ++report->transport_errors;
    return;
  }
  ServeClient* c = client.value().get();
  switch (seed % 3) {
    case 0: {
      // Corrupted document under a fail-fast guard: the parse or protocol
      // error must come back as a structured kError.
      Status opened = c->Open(options.query, "guard=failfast\npriority=0");
      if (!opened.ok()) {
        if (c->rejected_retry_after_ms() > 0)
          ++report->rejected;
        else
          RecordEnding(opened, c, report);
        return;
      }
      ++report->admitted;
      std::string doc = CorruptBytes(
          MakeBookDocument(seed, options.doc_bytes), seed, 0.02);
      Status run = c->FeedXml(doc);
      if (run.ok()) run = c->SendFinish();
      Status ending = c->WaitFinished(options.finish_timeout_ms);
      RecordEnding(ending, c, report);
      return;
    }
    case 1: {
      // Raw garbage: desyncs the framing; expect kError, then hangup.
      Prng prng(seed);
      std::string garbage;
      for (int i = 0; i < 512; ++i)
        garbage.push_back(static_cast<char>(prng.Uniform(256)));
      Status sent = c->SendRaw(garbage);
      if (!sent.ok()) {
        ++report->transport_errors;
        return;
      }
      auto frame = c->ReadFrame(options.finish_timeout_ms);
      if (frame.ok() && frame.value().type == FrameType::kError)
        ++report->errored;
      else
        ++report->transport_errors;
      return;
    }
    default: {
      // A frame-length bomb: a prefix advertising a payload far over the
      // server bound.  Must be refused from the header alone.
      std::string bomb;
      AppendU32(&bomb, 0x40000000u);  // claims a 1 GiB payload
      bomb.push_back(static_cast<char>(FrameType::kFeedXml));
      Status sent = c->SendRaw(bomb);
      if (!sent.ok()) {
        ++report->transport_errors;
        return;
      }
      auto frame = c->ReadFrame(options.finish_timeout_ms);
      if (frame.ok() && frame.value().type == FrameType::kError)
        ++report->errored;
      else
        ++report->transport_errors;
      return;
    }
  }
}

}  // namespace

void TrafficReport::MergeFrom(const TrafficReport& other) {
  attempted += other.attempted;
  admitted += other.admitted;
  rejected += other.rejected;
  completed += other.completed;
  errored += other.errored;
  evicted += other.evicted;
  transport_errors += other.transport_errors;
  deltas += other.deltas;
  delta_latency_ms.insert(delta_latency_ms.end(),
                          other.delta_latency_ms.begin(),
                          other.delta_latency_ms.end());
}

double TrafficReport::LatencyPercentile(double q) const {
  if (delta_latency_ms.empty()) return 0.0;
  std::vector<double> sorted = delta_latency_ms;
  std::sort(sorted.begin(), sorted.end());
  double idx = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string MakeBookDocument(uint64_t seed, size_t approx_bytes) {
  Prng prng(seed);
  const std::vector<std::string> authors = {"Smith", "Jones", "Doe", "Roe"};
  std::string doc = "<biblio>";
  while (doc.size() < approx_bytes) {
    doc += "<book><author>";
    doc += prng.Pick(authors);
    doc += "</author><price>";
    doc += std::to_string(prng.Uniform(90) + 10);
    doc += "</price></book>";
  }
  doc += "</biblio>";
  return doc;
}

TrafficReport RunTraffic(const TrafficOptions& options) {
  struct ClientJob {
    enum class Kind { kHonest, kSlow, kBursty, kHostile } kind;
    uint64_t seed;
  };
  std::vector<ClientJob> jobs;
  for (int i = 0; i < options.honest; ++i)
    jobs.push_back({ClientJob::Kind::kHonest, options.seed * 1000 + i});
  for (int i = 0; i < options.slow; ++i)
    jobs.push_back({ClientJob::Kind::kSlow, options.seed * 2000 + i});
  for (int i = 0; i < options.bursty; ++i)
    jobs.push_back({ClientJob::Kind::kBursty, options.seed * 3000 + i});
  for (int i = 0; i < options.hostile; ++i)
    jobs.push_back({ClientJob::Kind::kHostile, options.seed * 4000 + i});
  // Interleave personalities so hostile/slow load overlaps honest load
  // instead of running as separate phases.
  std::sort(jobs.begin(), jobs.end(),
            [](const ClientJob& a, const ClientJob& b) {
              return a.seed % 7 < b.seed % 7;
            });

  TrafficReport merged;
  std::mutex mu;
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (const ClientJob& job : jobs) {
    threads.emplace_back([&options, job, &merged, &mu] {
      TrafficReport local;
      switch (job.kind) {
        case ClientJob::Kind::kHonest:
          RunHonest(options, job.seed, /*slow=*/false, &local);
          break;
        case ClientJob::Kind::kSlow:
          RunHonest(options, job.seed, /*slow=*/true, &local);
          break;
        case ClientJob::Kind::kBursty:
          RunBursty(options, job.seed, &local);
          break;
        case ClientJob::Kind::kHostile:
          RunHostile(options, job.seed, &local);
          break;
      }
      std::lock_guard<std::mutex> lock(mu);
      merged.MergeFrom(local);
    });
  }
  for (std::thread& t : threads) t.join();
  return merged;
}

}  // namespace xflux::serve
