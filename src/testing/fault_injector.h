// Deterministic fault injection for hostile-stream testing.
//
// The robustness claim of the pipeline ("no input can cause undefined
// behavior; every input either yields the oracle answer or a clean non-OK
// Status") is only as strong as the adversary used to test it.  This header
// provides that adversary in two forms:
//
//  - FaultInjector, an EventSink wrapper that mutates an event stream on
//    its way to the real sink: dropping, duplicating and swapping events,
//    corrupting tags / bracket kinds / stream ids, and truncating the
//    stream mid-region.  Mutations are driven by a seeded splitmix64 Prng,
//    so every run is reproducible from (spec, seed) alone.
//
//  - Byte-level helpers for the SAX layer: CorruptBytes flips document
//    bytes into markup-significant characters and SplitIntoRandomChunks
//    re-chunks a document so every token boundary is eventually exercised
//    split across Feed() calls.
//
// Everything here is deterministic and allocation-light; the property suite
// runs thousands of (seed, query) combinations per build.

#ifndef XFLUX_TESTING_FAULT_INJECTOR_H_
#define XFLUX_TESTING_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/event.h"
#include "core/event_sink.h"
#include "util/prng.h"
#include "util/status.h"

namespace xflux {

/// Per-event mutation probabilities.  All default to 0 (pass-through).
struct FaultSpec {
  double drop = 0;          ///< discard the event
  double duplicate = 0;     ///< deliver the event twice
  double swap = 0;          ///< swap the event with its successor
  double corrupt_tag = 0;   ///< sE/eE only: replace the tag symbol
  double corrupt_kind = 0;  ///< rewrite the kind to a random other kind
  double corrupt_id = 0;    ///< perturb id (or uid for brackets)
  double truncate = 0;      ///< stop forwarding anything from here on

  bool empty() const {
    return drop == 0 && duplicate == 0 && swap == 0 && corrupt_tag == 0 &&
           corrupt_kind == 0 && corrupt_id == 0 && truncate == 0;
  }
};

/// Parses "drop=0.01,dup=0.01,swap=0.01,tag=0.01,kind=0.01,id=0.01,
/// trunc=0.001" (any subset, any order) or the presets "light" / "heavy".
StatusOr<FaultSpec> ParseFaultSpec(std::string_view spec);

/// How many mutations of each kind an injector applied.
struct FaultCounts {
  uint64_t drops = 0;
  uint64_t duplicates = 0;
  uint64_t swaps = 0;
  uint64_t tag_corruptions = 0;
  uint64_t kind_corruptions = 0;
  uint64_t id_corruptions = 0;
  uint64_t truncations = 0;

  uint64_t total() const {
    return drops + duplicates + swaps + tag_corruptions + kind_corruptions +
           id_corruptions + truncations;
  }
};

/// See file comment.  Wraps `sink`; every event Accept()ed is forwarded
/// mutated (or not) according to `spec` and the seeded Prng.  Call Flush()
/// after the last event — a pending swap holds one event back.
class FaultInjector : public EventSink {
 public:
  FaultInjector(const FaultSpec& spec, uint64_t seed, EventSink* sink)
      : spec_(spec), prng_(seed), sink_(sink) {}

  void Accept(Event event) override;
  void AcceptBatch(EventBatch batch) override;

  /// Delivers a held-back swap partner, if any.
  void Flush();

  const FaultCounts& counts() const { return counts_; }
  bool truncated() const { return truncated_; }

 private:
  void Forward(Event e);
  Event Corrupted(Event e);

  FaultSpec spec_;
  Prng prng_;
  EventSink* sink_;
  FaultCounts counts_;
  bool holding_ = false;  // one-slot lookahead for swap
  Event held_;
  bool truncated_ = false;
};

/// Offline convenience: runs `events` through a FaultInjector into a
/// vector.  `counts`, when non-null, receives the applied-mutation tally.
EventVec MutateStream(const EventVec& events, const FaultSpec& spec,
                      uint64_t seed, FaultCounts* counts = nullptr);

/// Splits `document` into chunks of 1..max_chunk bytes with seeded random
/// lengths — SaxParser::Feed fodder for chunk-boundary fuzzing.
std::vector<std::string> SplitIntoRandomChunks(std::string_view document,
                                               uint64_t seed,
                                               size_t max_chunk = 7);

/// Replaces ~rate of `document`'s bytes with markup-significant characters
/// ('<', '>', '&', ']', '"', NUL, ...), seeded and deterministic.
std::string CorruptBytes(std::string_view document, uint64_t seed,
                         double rate);

}  // namespace xflux

#endif  // XFLUX_TESTING_FAULT_INJECTOR_H_
