// Multi-client traffic generator for xflux_serve.
//
// Drives a running server with a configurable mix of client personalities
// and reports what happened — the measurement half of the service's
// robustness story (bench/bench_serve.cc turns the report into
// BENCH_serve.json; the CI serve-smoke job asserts on it):
//
//   honest  — open, subscribe, feed a generated document in chunks,
//             finish, drain; measures per-delta push latency (time from
//             the feed that made the answer dirty to the delta's arrival).
//   slow    — feeds with think-time and never reads until the end: the
//             slow-consumer case the server's bounded outbound queue and
//             write deadline exist for.
//   bursty  — the whole document in one frame, finish immediately: spiky
//             arrival pattern, stresses admission and big single frames.
//   hostile — rotates through corrupted-XML feeds (guard=failfast),
//             raw garbage bytes (framing desync), and an oversized frame
//             length prefix: every one must come back as a structured
//             error or rejection, never a hang or a crash.
//
// Each client runs on its own thread with a blocking ServeClient; the
// per-client outcomes merge into one TrafficReport.  Determinism: client
// i derives its behavior from (options.seed, i) alone.

#ifndef XFLUX_TESTING_TRAFFIC_GEN_H_
#define XFLUX_TESTING_TRAFFIC_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xflux::serve {

struct TrafficOptions {
  std::string endpoint;          ///< ServeServer::endpoint() string
  std::string query = "X//author";
  int honest = 0;
  int slow = 0;
  int bursty = 0;
  int hostile = 0;
  uint64_t seed = 1;
  /// Approximate generated document size per client.
  size_t doc_bytes = 4096;
  /// Feed chunking for honest/slow clients.
  size_t chunk_bytes = 256;
  /// Slow clients sleep this long between feeds (and before draining).
  int slow_delay_ms = 30;
  /// Per-client budget for the final drain.
  int finish_timeout_ms = 15000;
};

struct TrafficReport {
  uint64_t attempted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;          ///< kRejected at admission
  uint64_t completed = 0;         ///< clean kFinished
  uint64_t errored = 0;           ///< structured kError ending
  uint64_t evicted = 0;           ///< tier-3 kShedNotice ending
  uint64_t transport_errors = 0;  ///< timeouts / unexpected disconnects
  uint64_t deltas = 0;
  std::vector<double> delta_latency_ms;  ///< honest clients only

  void MergeFrom(const TrafficReport& other);
  /// Percentile over delta_latency_ms (q in [0,1]); 0 when empty.
  double LatencyPercentile(double q) const;
};

/// Runs the whole mix against `options.endpoint` and blocks until every
/// client finished.  The server must already be listening.
TrafficReport RunTraffic(const TrafficOptions& options);

/// The deterministic document honest/slow/bursty clients feed: a flat
/// bookstore of approximately `approx_bytes` XML text.
std::string MakeBookDocument(uint64_t seed, size_t approx_bytes);

}  // namespace xflux::serve

#endif  // XFLUX_TESTING_TRAFFIC_GEN_H_
