#include "testing/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace xflux {

namespace {

constexpr int kEventKindCount = 17;  // kStartStream .. kShow

double* FieldFor(FaultSpec* spec, std::string_view key) {
  if (key == "drop") return &spec->drop;
  if (key == "dup" || key == "duplicate") return &spec->duplicate;
  if (key == "swap") return &spec->swap;
  if (key == "tag") return &spec->corrupt_tag;
  if (key == "kind") return &spec->corrupt_kind;
  if (key == "id") return &spec->corrupt_id;
  if (key == "trunc" || key == "truncate") return &spec->truncate;
  return nullptr;
}

}  // namespace

StatusOr<FaultSpec> ParseFaultSpec(std::string_view spec) {
  FaultSpec out;
  if (spec == "light") {
    out.drop = out.duplicate = out.swap = 0.002;
    out.corrupt_tag = out.corrupt_kind = out.corrupt_id = 0.002;
    out.truncate = 0.0005;
    return out;
  }
  if (spec == "heavy") {
    out.drop = out.duplicate = out.swap = 0.02;
    out.corrupt_tag = out.corrupt_kind = out.corrupt_id = 0.02;
    out.truncate = 0.002;
    return out;
  }
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("fault spec entry '" +
                                     std::string(entry) + "' missing '='");
    }
    double* field = FieldFor(&out, entry.substr(0, eq));
    if (field == nullptr) {
      return Status::InvalidArgument(
          "unknown fault '" + std::string(entry.substr(0, eq)) +
          "' (want drop|dup|swap|tag|kind|id|trunc)");
    }
    std::string value(entry.substr(eq + 1));
    char* end = nullptr;
    double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad fault probability '" + value + "'");
    }
    *field = p;
  }
  return out;
}

Event FaultInjector::Corrupted(Event e) {
  // Weighted choice among the applicable corruptions; each branch is a
  // distinct protocol attack the guard must classify.
  bool taggable =
      e.kind == EventKind::kStartElement || e.kind == EventKind::kEndElement;
  double w_tag = taggable ? spec_.corrupt_tag : 0;
  double total = w_tag + spec_.corrupt_kind + spec_.corrupt_id;
  if (total == 0) return e;  // tag-only spec on a non-element event
  double roll = prng_.NextDouble() * total;
  if (roll < w_tag) {
    ++counts_.tag_corruptions;
    e.tag = InternTag("__corrupt" + std::to_string(prng_.Uniform(4)));
    return e;
  }
  roll -= w_tag;
  if (roll < spec_.corrupt_kind) {
    ++counts_.kind_corruptions;
    auto kind = static_cast<uint8_t>(prng_.Uniform(kEventKindCount));
    if (kind == static_cast<uint8_t>(e.kind)) {
      kind = static_cast<uint8_t>((kind + 1) % kEventKindCount);
    }
    e.kind = static_cast<EventKind>(kind);
    return e;
  }
  ++counts_.id_corruptions;
  StreamId delta = static_cast<StreamId>(1 + prng_.Uniform(3));
  if (e.IsUpdateStart() || e.IsUpdateEnd()) {
    e.uid += delta;
  } else {
    e.id += delta;
  }
  return e;
}

void FaultInjector::Forward(Event e) {
  if (holding_) {
    // `held_` was selected for a swap: its successor goes first.
    Event first = std::move(e);
    Event second = std::move(held_);
    holding_ = false;
    sink_->Accept(std::move(first));
    sink_->Accept(std::move(second));
    return;
  }
  sink_->Accept(std::move(e));
}

void FaultInjector::Accept(Event event) {
  if (truncated_) {
    return;
  }
  if (spec_.truncate > 0 && prng_.Chance(spec_.truncate)) {
    ++counts_.truncations;
    truncated_ = true;
    return;
  }
  if (spec_.drop > 0 && prng_.Chance(spec_.drop)) {
    ++counts_.drops;
    return;
  }
  if (spec_.duplicate > 0 && prng_.Chance(spec_.duplicate)) {
    ++counts_.duplicates;
    Forward(event);
    Forward(std::move(event));
    return;
  }
  if (spec_.swap > 0 && !holding_ && prng_.Chance(spec_.swap)) {
    ++counts_.swaps;
    held_ = std::move(event);
    holding_ = true;
    return;
  }
  double corrupt_total =
      spec_.corrupt_tag + spec_.corrupt_kind + spec_.corrupt_id;
  if (corrupt_total > 0 && prng_.Chance(corrupt_total)) {
    Forward(Corrupted(std::move(event)));
    return;
  }
  Forward(std::move(event));
}

void FaultInjector::AcceptBatch(EventBatch batch) {
  for (Event& e : batch) Accept(std::move(e));
}

void FaultInjector::Flush() {
  if (!holding_) return;
  holding_ = false;
  if (!truncated_) sink_->Accept(std::move(held_));
}

EventVec MutateStream(const EventVec& events, const FaultSpec& spec,
                      uint64_t seed, FaultCounts* counts) {
  CollectingSink collected;
  FaultInjector injector(spec, seed, &collected);
  for (const Event& e : events) injector.Accept(e);
  injector.Flush();
  if (counts != nullptr) *counts = injector.counts();
  return collected.Take();
}

std::vector<std::string> SplitIntoRandomChunks(std::string_view document,
                                               uint64_t seed,
                                               size_t max_chunk) {
  Prng prng(seed);
  if (max_chunk == 0) max_chunk = 1;
  std::vector<std::string> chunks;
  size_t pos = 0;
  while (pos < document.size()) {
    size_t len = 1 + prng.Uniform(max_chunk);
    len = std::min(len, document.size() - pos);
    chunks.emplace_back(document.substr(pos, len));
    pos += len;
  }
  return chunks;
}

std::string CorruptBytes(std::string_view document, uint64_t seed,
                         double rate) {
  static constexpr char kNoise[] = {'<', '>', '&', ']', '"', '\'', '/',
                                    '=', '\0', ';', '!', '?'};
  Prng prng(seed);
  std::string out(document);
  for (char& c : out) {
    if (prng.Chance(rate)) {
      c = kNoise[prng.Uniform(sizeof(kNoise))];
    }
  }
  return out;
}

}  // namespace xflux
