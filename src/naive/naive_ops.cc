#include "naive/naive_ops.h"

#include <map>

#include "ops/sorter.h"
#include "util/buffer_ledger.h"

namespace xflux {

namespace {

struct NaivePredicateState : StateBase<NaivePredicateState> {
  int depth = 0;
  int cdepth = 0;
  bool outcome = false;
  EventVec buffer;  // the cached current element
  BufferLedger ledger;  // its bytes, shared payloads counted once
};

struct NaiveSorterState : StateBase<NaiveSorterState> {
  bool in_tuple = false;
  bool found_key = false;
  std::string key;
  EventVec current;
  std::multimap<std::string, EventVec> tuples;
  BufferLedger ledger;  // bytes across all cached tuples
  int kdepth = 0;
};

struct NaiveCountState : StateBase<NaiveCountState> {
  int depth = 0;
  int64_t count = 0;
};

struct NaiveDescendantState : StateBase<NaiveDescendantState> {
  int depth = 0;
  EventVec buffer;  // the cached current top-level subtree
  BufferLedger ledger;  // its bytes, shared payloads counted once
};

}  // namespace

// ---------------------------------------------------------------------------
// NaivePredicate

std::unique_ptr<OperatorState> NaivePredicate::InitialState() const {
  return std::make_unique<NaivePredicateState>();
}

void NaivePredicate::Process(const Event& e, StreamId root,
                             OperatorState* state, EventVec* out) {
  auto* s = static_cast<NaivePredicateState*>(state);
  Metrics* metrics = stage()->metrics();
  if (root == condition_input_) {
    switch (e.kind) {
      case EventKind::kStartElement:
        ++s->cdepth;
        break;
      case EventKind::kEndElement:
        --s->cdepth;
        break;
      case EventKind::kCharacters:
        if (s->cdepth == 0 && !e.text.empty()) s->outcome = true;
        break;
      default:
        break;
    }
    return;
  }
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      if (s->depth == 0) {
        s->outcome = false;
        s->buffer.clear();
      }
      ++s->depth;
      metrics->OnBuffered(1, s->ledger.Add(e.text, sizeof(Event)));
      s->buffer.push_back(e);
      return;
    case EventKind::kEndElement: {
      --s->depth;
      s->buffer.push_back(e);
      metrics->OnBuffered(1, s->ledger.Add(e.text, sizeof(Event)));
      if (s->depth == 0) {
        metrics->OnUnbuffered(static_cast<int64_t>(s->buffer.size()),
                              s->ledger.Clear());
        if (s->outcome) {
          for (Event& b : s->buffer) out->push_back(std::move(b));
        }
        s->buffer.clear();
      }
      return;
    }
    case EventKind::kCharacters:
      if (s->depth > 0) {
        metrics->OnBuffered(1, s->ledger.Add(e.text, sizeof(Event)));
        s->buffer.push_back(e);
      }
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// NaiveSorter

std::unique_ptr<OperatorState> NaiveSorter::InitialState() const {
  return std::make_unique<NaiveSorterState>();
}

void NaiveSorter::Process(const Event& e, StreamId root, OperatorState* state,
                          EventVec* out) {
  auto* s = static_cast<NaiveSorterState*>(state);
  Metrics* metrics = stage()->metrics();
  if (root == key_input_) {
    switch (e.kind) {
      case EventKind::kStartElement:
        ++s->kdepth;
        break;
      case EventKind::kEndElement:
        --s->kdepth;
        break;
      case EventKind::kCharacters:
        if (s->kdepth == 0 && s->in_tuple && !s->found_key) {
          s->key = std::string(e.chars());
          s->found_key = true;
        }
        break;
      default:
        break;
    }
    return;
  }
  switch (e.kind) {
    case EventKind::kStartStream:
      out->push_back(e);
      return;
    case EventKind::kEndStream:
      // The blocking release: everything comes out at once, sorted.
      for (auto& [key, events] : s->tuples) {
        int64_t freed = 0;
        for (const Event& b : events) {
          freed += s->ledger.Remove(b.text, sizeof(Event));
        }
        metrics->OnUnbuffered(static_cast<int64_t>(events.size()), freed);
        for (Event& b : events) out->push_back(std::move(b));
      }
      s->tuples.clear();
      out->push_back(e);
      return;
    case EventKind::kStartTuple:
      s->in_tuple = true;
      s->found_key = false;
      s->key.clear();
      s->current.clear();
      return;
    case EventKind::kEndTuple:
      s->in_tuple = false;
      {
        int64_t added = 0;
        for (const Event& b : s->current) {
          added += s->ledger.Add(b.text, sizeof(Event));
        }
        metrics->OnBuffered(static_cast<int64_t>(s->current.size()), added);
      }
      s->tuples.emplace(EncodeSortKey(s->found_key ? s->key : ""),
                        std::move(s->current));
      s->current.clear();
      return;
    default:
      if (s->in_tuple) s->current.push_back(e);
      return;
  }
}

// ---------------------------------------------------------------------------
// NaiveCount

std::unique_ptr<OperatorState> NaiveCount::InitialState() const {
  return std::make_unique<NaiveCountState>();
}

void NaiveCount::Process(const Event& e, StreamId /*root*/,
                         OperatorState* state, EventVec* out) {
  auto* s = static_cast<NaiveCountState*>(state);
  switch (e.kind) {
    case EventKind::kStartStream:
      out->push_back(e);
      return;
    case EventKind::kEndStream:
      // Blocking: the total is revealed only now.
      out->push_back(Event::Characters(e.id, std::to_string(s->count)));
      out->push_back(e);
      return;
    case EventKind::kStartElement:
      if (s->depth == 0 && mode_ == CountMode::kTopLevelElements) ++s->count;
      ++s->depth;
      return;
    case EventKind::kEndElement:
      --s->depth;
      return;
    case EventKind::kCharacters:
      if (mode_ == CountMode::kCharacterData) ++s->count;
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// NaiveDescendant

std::unique_ptr<OperatorState> NaiveDescendant::InitialState() const {
  return std::make_unique<NaiveDescendantState>();
}

bool NaiveDescendant::Matches(Symbol tag) const {
  if (wildcard_) return !SymbolTable::Global().IsAttribute(tag);
  return tag == tag_sym_;
}

void NaiveDescendant::Process(const Event& e, StreamId /*root*/,
                              OperatorState* state, EventVec* out) {
  auto* s = static_cast<NaiveDescendantState*>(state);
  Metrics* metrics = stage()->metrics();
  switch (e.kind) {
    case EventKind::kStartStream:
    case EventKind::kEndStream:
    case EventKind::kStartTuple:
    case EventKind::kEndTuple:
      out->push_back(e);
      return;
    case EventKind::kStartElement:
    case EventKind::kEndElement:
    case EventKind::kCharacters: {
      if (e.kind == EventKind::kStartElement) {
        ++s->depth;
      }
      bool closing_root = false;
      if (e.kind == EventKind::kEndElement) {
        --s->depth;
        closing_root = s->depth == 0;
      }
      if (s->depth > 0 || closing_root) {
        metrics->OnBuffered(1, s->ledger.Add(e.text, sizeof(Event)));
        s->buffer.push_back(e);
      }
      if (!closing_root) return;
      // The whole document-element subtree is cached; emit the matching
      // descendants in postorder by scanning it.
      metrics->OnUnbuffered(static_cast<int64_t>(s->buffer.size()),
                            s->ledger.Clear());
      // For each matching element, find its span and emit it after its
      // descendants — postorder by closing position.
      std::vector<size_t> open;  // indexes of open start events
      std::vector<std::pair<size_t, size_t>> spans;  // [start, end] indexes
      int depth = 0;
      for (size_t i = 0; i < s->buffer.size(); ++i) {
        const Event& b = s->buffer[i];
        if (b.kind == EventKind::kStartElement) {
          if (depth >= 1 && Matches(b.tag)) open.push_back(i);
          ++depth;
        } else if (b.kind == EventKind::kEndElement) {
          --depth;
          if (depth >= 1 && Matches(b.tag) && !open.empty()) {
            spans.emplace_back(open.back(), i);
            open.pop_back();
          }
        }
      }
      // spans are already ordered by closing position == postorder.
      for (const auto& [from, to] : spans) {
        for (size_t i = from; i <= to; ++i) out->push_back(s->buffer[i]);
      }
      s->buffer.clear();
      return;
    }
    default:
      return;
  }
}

}  // namespace xflux
