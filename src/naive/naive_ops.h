// Naive blocking/buffered baseline operators.
//
// These implement the same semantics as the unblocked operators in
// src/ops/, the way a conventional engine would: by caching events until a
// decision can be made.  They exist (a) as oracles for the equivalence
// property tests — an unblocked operator's materialized output must equal
// its naive counterpart's — and (b) as the comparison arm of the buffering
// and latency ablation benchmarks (experiment A1 in DESIGN.md).  They are
// only meaningful on plain streams: they make irrevocable decisions, which
// is exactly the paper's argument against them.

#ifndef XFLUX_NAIVE_NAIVE_OPS_H_
#define XFLUX_NAIVE_NAIVE_OPS_H_

#include <string>

#include "core/pipeline.h"
#include "core/state_transformer.h"
#include "ops/aggregates.h"
#include "util/symbol_table.h"

namespace xflux {

/// Blocking predicate: caches each top-level element of the data stream
/// until its condition resolves, then emits or discards it wholesale.
class NaivePredicate : public StateTransformer {
 public:
  NaivePredicate(PipelineContext* context, StreamId data_input,
                 StreamId condition_input)
      : context_(context),
        data_input_(data_input),
        condition_input_(condition_input) {}

  std::string Name() const override { return "naive-predicate"; }
  bool Consumes(StreamId base_id) const override {
    return base_id == data_input_ || base_id == condition_input_;
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  PipelineContext* context_;
  StreamId data_input_;
  StreamId condition_input_;
};

/// Blocking sort: caches every tuple with its key and releases the whole
/// sorted sequence at end of stream.
class NaiveSorter : public StateTransformer {
 public:
  NaiveSorter(PipelineContext* context, StreamId data_input,
              StreamId key_input)
      : context_(context), data_input_(data_input), key_input_(key_input) {}

  std::string Name() const override { return "naive-sort"; }
  bool Consumes(StreamId base_id) const override {
    return base_id == data_input_ || base_id == key_input_;
  }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  PipelineContext* context_;
  StreamId data_input_;
  StreamId key_input_;
};

/// Blocking count: emits the total exactly once, at end of stream.
class NaiveCount : public StateTransformer {
 public:
  NaiveCount(StreamId input, CountMode mode) : input_(input), mode_(mode) {}

  std::string Name() const override { return "naive-count"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  StreamId input_;
  CountMode mode_;
};

/// Buffered descendant step: caches each top-level subtree entirely, then
/// emits the matching descendants in postorder — the O(subtree) buffering
/// the paper's //* avoids.
class NaiveDescendant : public StateTransformer {
 public:
  NaiveDescendant(PipelineContext* context, StreamId input, std::string tag)
      : context_(context),
        input_(input),
        tag_(std::move(tag)),
        wildcard_(tag_ == "*"),
        tag_sym_(wildcard_ ? Symbol() : InternTag(tag_)) {}

  std::string Name() const override { return "naive-descendant(" + tag_ + ")"; }
  bool Consumes(StreamId base_id) const override { return base_id == input_; }
  std::unique_ptr<OperatorState> InitialState() const override;
  void Process(const Event& e, StreamId root, OperatorState* state,
               EventVec* out) override;

 private:
  bool Matches(Symbol tag) const;

  PipelineContext* context_;
  StreamId input_;
  std::string tag_;
  bool wildcard_;
  Symbol tag_sym_;
};

}  // namespace xflux

#endif  // XFLUX_NAIVE_NAIVE_OPS_H_
